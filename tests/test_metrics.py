"""Unit tests for profit accounting and result aggregation."""

import pytest

from repro.db.transactions import Query, Update
from repro.metrics.profit import ProfitLedger
from repro.metrics.results import (SimulationResult, _merge_series,
                                   improvement_percent)
from repro.qc.contracts import QualityContract
from repro.sim.monitor import TimeSeries


def committed_query(qosmax=10.0, qodmax=10.0, rt=20.0, staleness=0.0):
    query = Query(0.0, 7.0, ("A",),
                  QualityContract.step(qosmax, 50.0, qodmax, 1.0))
    query.finish_time = rt
    query.staleness = staleness
    qos, qod = query.qc.evaluate(rt, staleness)
    query.qos_profit, query.qod_profit = qos, qod
    return query


class TestLedgerAccounting:
    def test_submission_accumulates_maxima(self):
        ledger = ProfitLedger()
        ledger.on_query_submitted(committed_query(10.0, 30.0), now=0.0)
        assert ledger.qos_max_submitted == 10.0
        assert ledger.qod_max_submitted == 30.0
        assert ledger.total_max == 40.0
        assert ledger.qos_max_percent == pytest.approx(0.25)

    def test_commit_accumulates_gains(self):
        ledger = ProfitLedger()
        query = committed_query(10.0, 30.0, rt=20.0, staleness=0.0)
        ledger.on_query_submitted(query, now=0.0)
        ledger.on_query_committed(query, now=20.0)
        assert ledger.qos_gained == 10.0
        assert ledger.qod_gained == 30.0
        assert ledger.total_percent == pytest.approx(1.0)

    def test_missed_deadline_earns_qod_only(self):
        ledger = ProfitLedger()
        query = committed_query(10.0, 30.0, rt=200.0, staleness=0.0)
        ledger.on_query_submitted(query, now=0.0)
        ledger.on_query_committed(query, now=200.0)
        assert ledger.qos_gained == 0.0
        assert ledger.qod_gained == 30.0
        assert ledger.qos_percent == 0.0
        assert ledger.qod_percent == pytest.approx(0.75)

    def test_empty_ledger_percentages_zero(self):
        ledger = ProfitLedger()
        assert ledger.total_percent == 0.0
        assert ledger.qos_percent == 0.0
        assert ledger.qos_max_percent == 0.0

    def test_response_time_and_staleness_tallies(self):
        ledger = ProfitLedger()
        for rt, uu in [(10.0, 0.0), (30.0, 2.0)]:
            query = committed_query(rt=rt, staleness=uu)
            ledger.on_query_submitted(query, now=0.0)
            ledger.on_query_committed(query, now=rt)
        assert ledger.response_time.mean == pytest.approx(20.0)
        assert ledger.staleness.mean == pytest.approx(1.0)

    def test_counters(self):
        ledger = ProfitLedger()
        query = committed_query()
        update = Update(0.0, 1.0, "A")
        ledger.on_query_submitted(query, 0.0)
        ledger.on_query_dropped(query, 5.0)
        ledger.on_query_unfinished(query)
        ledger.on_update_applied(update, 1.0)
        ledger.on_update_superseded(update, 2.0)
        ledger.on_update_unfinished(update)
        ledger.on_restart(victim_is_query=True)
        ledger.on_restart(victim_is_query=False)
        counters = ledger.counters.as_dict()
        assert counters["queries_dropped_lifetime"] == 1
        assert counters["queries_unfinished"] == 1
        assert counters["updates_applied"] == 1
        assert counters["updates_superseded"] == 1
        assert counters["updates_unfinished"] == 1
        assert counters["restarts_queries"] == 1
        assert counters["restarts_updates"] == 1

    def test_time_series_recorded(self):
        ledger = ProfitLedger()
        query = committed_query()
        ledger.on_query_submitted(query, now=5.0)
        ledger.on_query_committed(query, now=25.0)
        assert list(ledger.submitted_qos_series.items()) == [(5.0, 10.0)]
        assert list(ledger.gained_qos_series.items()) == [(25.0, 10.0)]


class TestSimulationResult:
    def _result(self):
        ledger = ProfitLedger()
        query = committed_query(rt=10.0)
        ledger.on_query_submitted(query, now=0.0)
        ledger.on_query_committed(query, now=10.0)
        return SimulationResult("QUTS", duration=1_000.0, ledger=ledger)

    def test_properties_delegate(self):
        result = self._result()
        assert result.mean_response_time == 10.0
        assert result.total_percent == pytest.approx(1.0)
        assert result.counters["queries_committed"] == 1

    def test_profit_timeline_buckets(self):
        result = self._result()
        timeline = result.profit_timeline("total", bucket_ms=500.0,
                                          window_ms=0.0)
        assert sum(timeline.values) == pytest.approx(20.0)

    def test_profit_timeline_max_lines(self):
        result = self._result()
        timeline = result.profit_timeline("qos", bucket_ms=500.0,
                                          window_ms=0.0, gained=False)
        assert sum(timeline.values) == pytest.approx(10.0)


class TestHelpers:
    def test_merge_series_ordered(self):
        a, b = TimeSeries("a"), TimeSeries("b")
        a.record(1.0, 1.0)
        a.record(5.0, 2.0)
        b.record(3.0, 10.0)
        merged = _merge_series(a, b, "m")
        assert list(merged.items()) == [(1.0, 1.0), (3.0, 10.0), (5.0, 2.0)]

    def test_improvement_percent(self):
        assert improvement_percent(2.0, 1.0) == pytest.approx(100.0)
        assert improvement_percent(1.4, 1.0) == pytest.approx(40.0)
        assert improvement_percent(1.0, 0.0) == float("inf")
        assert improvement_percent(0.0, 0.0) == 0.0
