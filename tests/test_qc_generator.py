"""Unit tests for QC factories (the experiment setups of §5)."""

import pytest

from repro.qc.contracts import CompositionMode
from repro.qc.generator import PhasedQCFactory, QCFactory
from repro.sim.rng import RandomStream


def rng(seed=0):
    return RandomStream(seed, "test")


class TestQCFactory:
    def test_balanced_ranges(self):
        """§5.1.1: qosmax, qodmax ~ U($10, $50), rtmax ~ U(50, 100)."""
        factory = QCFactory.balanced()
        stream = rng()
        for __ in range(200):
            qc = factory.sample(stream)
            assert 10.0 <= qc.qos_max <= 50.0
            assert 10.0 <= qc.qod_max <= 50.0
            assert 50.0 <= qc.rt_max <= 100.0
            assert qc.uu_max == 1.0

    def test_balanced_linear_shape(self):
        factory = QCFactory.balanced(shape="linear")
        qc = factory.sample(rng())
        # Linear QCs decay: half the threshold gives half the profit.
        assert 0 < qc.qos.profit(qc.rt_max / 2) < qc.qos_max

    def test_spectrum_point_decades(self):
        """Table 4: QODmax%=0.3 means qodmax ~ U($30, $39),
        qosmax ~ U($70, $79)."""
        factory = QCFactory.spectrum_point(0.3)
        assert factory.qodmax_range == (30.0, 39.0)
        assert factory.qosmax_range == (70.0, 79.0)
        stream = rng()
        for __ in range(100):
            qc = factory.sample(stream)
            assert 30.0 <= qc.qod_max <= 39.0
            assert 70.0 <= qc.qos_max <= 79.0

    def test_spectrum_point_expected_split(self):
        factory = QCFactory.spectrum_point(0.9)
        stream = rng()
        qod = qos = 0.0
        for __ in range(2000):
            qc = factory.sample(stream)
            qod += qc.qod_max
            qos += qc.qos_max
        assert qod / (qod + qos) == pytest.approx(0.866, abs=0.01)

    def test_spectrum_point_bounds(self):
        with pytest.raises(ValueError):
            QCFactory.spectrum_point(0.0)
        with pytest.raises(ValueError):
            QCFactory.spectrum_point(1.0)

    def test_ratio_factory(self):
        factory = QCFactory.ratio(5.0)
        stream = rng()
        for __ in range(50):
            qc = factory.sample(stream)
            assert qc.qos_max / qc.qod_max == pytest.approx(5.0, rel=0.25)

    def test_ratio_inverse(self):
        factory = QCFactory.ratio(0.2)
        stream = rng()
        qc = factory.sample(stream)
        assert qc.qod_max > qc.qos_max

    def test_ratio_requires_positive(self):
        with pytest.raises(ValueError):
            QCFactory.ratio(0.0)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            QCFactory((10, 50), (10, 50), shape="cubic")  # type: ignore

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            QCFactory((50, 10), (10, 50))

    def test_mode_passthrough(self):
        factory = QCFactory((10, 50), (10, 50),
                            mode=CompositionMode.QOS_DEPENDENT)
        assert factory.sample(rng()).mode is CompositionMode.QOS_DEPENDENT

    def test_deterministic_given_stream(self):
        a = QCFactory.balanced().sample(rng(3))
        b = QCFactory.balanced().sample(rng(3))
        assert a.qos_max == b.qos_max
        assert a.rt_max == b.rt_max


class TestPhasedQCFactory:
    def test_factory_at_selects_phase(self):
        early = QCFactory.ratio(5.0)
        late = QCFactory.ratio(0.2)
        phased = PhasedQCFactory([(0.0, early), (100.0, late)])
        assert phased.factory_at(0.0) is early
        assert phased.factory_at(99.9) is early
        assert phased.factory_at(100.0) is late
        assert phased.factory_at(1e9) is late

    def test_sample_uses_time(self):
        phased = PhasedQCFactory.flip_flop(100.0, [5.0, 0.2])
        stream = rng()
        early = phased.sample(stream, now=50.0)
        late = phased.sample(stream, now=150.0)
        assert early.qos_max > early.qod_max
        assert late.qod_max > late.qos_max

    def test_flip_flop_phase_count(self):
        phased = PhasedQCFactory.flip_flop(75_000.0, [0.2, 5.0, 0.2, 5.0])
        assert len(phased.phases) == 4
        assert [start for start, __ in phased.phases] == [
            0.0, 75_000.0, 150_000.0, 225_000.0]

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedQCFactory([])

    def test_non_increasing_starts_rejected(self):
        factory = QCFactory.balanced()
        with pytest.raises(ValueError):
            PhasedQCFactory([(10.0, factory), (10.0, factory)])
