"""Tests for the admission-control extension."""

import pytest

from repro.db.admission import (AdmissionPolicy, AdmitAll,
                                ProfitAwareAdmission)
from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, TxnStatus
from repro.experiments.runner import run_simulation
from repro.metrics.profit import ProfitLedger
from repro.qc.contracts import QualityContract
from repro.scheduling import make_scheduler, make_uh
from repro.sim import Environment
from repro.sim.rng import StreamRegistry
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec


def step_qc(qosmax=10.0, rtmax=50.0, qodmax=10.0):
    return QualityContract.step(qosmax, rtmax, qodmax, 1.0)


def query(qosmax=10.0, rtmax=50.0, qodmax=10.0, at=0.0):
    return Query(at, 7.0, ("A",), step_qc(qosmax, rtmax, qodmax))


def build_server(admission):
    env = Environment()
    ledger = ProfitLedger()
    server = DatabaseServer(env, Database(), make_uh(), ledger,
                            StreamRegistry(0),
                            config=ServerConfig(class_switch_overhead=0.0),
                            admission=admission)
    return env, server, ledger


class TestPolicyValidation:
    def test_base_policy_abstract(self):
        with pytest.raises(NotImplementedError):
            AdmissionPolicy().admit(query(), None)  # type: ignore[arg-type]

    @pytest.mark.parametrize("kwargs", [
        {"mean_query_service_ms": 0.0},
        {"slack_factor": 0.5},
        {"qod_weight": 1.5},
    ])
    def test_profit_aware_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProfitAwareAdmission(**kwargs)


class TestAdmitAll:
    def test_everything_enters(self):
        env, server, ledger = build_server(AdmitAll())
        server.submit_query(query())
        env.run(until=50.0)
        assert ledger.counters.value("queries_committed") == 1
        assert ledger.counters.value("queries_rejected") == 0


class TestProfitAwareAdmission:
    def test_admits_when_backlog_small(self):
        env, server, ledger = build_server(ProfitAwareAdmission())
        server.submit_query(query())
        env.run(until=100.0)
        assert ledger.counters.value("queries_rejected") == 0

    def test_rejects_when_backlog_hopeless(self):
        env, server, ledger = build_server(
            ProfitAwareAdmission(slack_factor=1.0, qod_weight=0.9))
        # Flood the queue far beyond any rtmax before time advances.
        for __ in range(100):
            server.submit_query(query(qosmax=10.0, qodmax=1.0))
        rejected = ledger.counters.value("queries_rejected")
        assert rejected > 0
        submitted = ledger.counters.value("queries_submitted")
        assert submitted + rejected == 100

    def test_qod_heavy_query_admitted_despite_backlog(self):
        env, server, __ = build_server(
            ProfitAwareAdmission(slack_factor=1.0, qod_weight=0.5))
        for __ in range(100):
            server.submit_query(query(qosmax=10.0, qodmax=1.0))
        # A QoD-dominant query is still worth running late.
        fresh_lover = query(qosmax=1.0, qodmax=99.0)
        server.submit_query(fresh_lover)
        assert fresh_lover.status is TxnStatus.QUEUED

    def test_rejected_query_profit_neutral(self):
        env, server, ledger = build_server(
            ProfitAwareAdmission(slack_factor=1.0, qod_weight=1.0))
        for __ in range(100):
            server.submit_query(query())
        before = ledger.total_max
        victim = query()
        server.submit_query(victim)
        assert victim.status is TxnStatus.REJECTED
        assert ledger.total_max == before  # denominators untouched

    def test_no_deadline_always_admitted(self):
        env, server, __ = build_server(ProfitAwareAdmission())
        free = Query(0.0, 7.0, ("A",), QualityContract.free())
        for __ in range(100):
            server.submit_query(query())
        server.submit_query(free)
        assert free.status is TxnStatus.QUEUED


class TestEndToEnd:
    def test_admission_can_only_help_uh_profit_rate(self):
        """Under UH's meltdown, shedding hopeless queries must not reduce
        the profit actually gained (it only declines contracts that were
        going to pay nothing)."""
        trace = StockWorkloadGenerator(WorkloadSpec().scaled(20_000.0),
                                       master_seed=11).generate()
        from repro.qc.generator import QCFactory
        plain = run_simulation(make_scheduler("UH"), trace,
                               QCFactory.balanced(), master_seed=1)
        shed = run_simulation(make_scheduler("UH"), trace,
                              QCFactory.balanced(), master_seed=1,
                              admission=ProfitAwareAdmission())
        assert shed.counters.get("queries_rejected", 0) > 0
        # Gained dollars with shedding stay within a small factor of the
        # admit-all run (rejected queries were mostly worthless anyway).
        assert shed.ledger.total_gained >= 0.8 * plain.ledger.total_gained
