"""Unit + property tests for DataItem staleness accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.items import DataItem


class TestFreshness:
    def test_new_item_is_fresh(self):
        item = DataItem("IBM", value=100.0)
        assert item.is_fresh
        assert item.unapplied_updates == 0
        assert item.time_differential(now=50.0) == 0.0
        assert item.value_distance == 0.0

    def test_arrival_makes_stale(self):
        item = DataItem("IBM", value=100.0)
        seq = item.record_arrival(now=10.0, value=101.0)
        assert seq == 1
        assert not item.is_fresh
        assert item.unapplied_updates == 1
        assert item.master_value == 101.0
        assert item.value == 100.0  # replica unchanged until applied

    def test_apply_restores_freshness(self):
        item = DataItem("IBM")
        seq = item.record_arrival(now=10.0, value=5.0)
        item.apply(seq, 5.0, now=20.0)
        assert item.is_fresh
        assert item.unapplied_updates == 0
        assert item.value == 5.0
        assert item.last_applied_time == 20.0

    def test_uu_counts_all_unapplied_arrivals(self):
        item = DataItem("IBM")
        for k in range(5):
            item.record_arrival(now=float(k), value=float(k))
        assert item.unapplied_updates == 5

    def test_applying_latest_clears_all(self):
        """Blind updates: applying the newest clears the whole backlog."""
        item = DataItem("IBM")
        last_seq = 0
        for k in range(5):
            last_seq = item.record_arrival(now=float(k), value=float(k))
        item.apply(last_seq, 4.0, now=10.0)
        assert item.unapplied_updates == 0
        assert item.is_fresh

    def test_applying_stale_seq_is_ignored(self):
        item = DataItem("IBM")
        seq1 = item.record_arrival(now=1.0, value=1.0)
        seq2 = item.record_arrival(now=2.0, value=2.0)
        item.apply(seq2, 2.0, now=3.0)
        item.apply(seq1, 1.0, now=4.0)  # late, superseded apply
        assert item.value == 2.0
        assert item.applied_seq == seq2


class TestTimeDifferential:
    def test_td_measures_since_first_unapplied(self):
        item = DataItem("IBM")
        item.record_arrival(now=10.0, value=1.0)
        item.record_arrival(now=20.0, value=2.0)
        assert item.time_differential(now=30.0) == pytest.approx(20.0)

    def test_td_resets_when_fresh(self):
        item = DataItem("IBM")
        seq = item.record_arrival(now=10.0, value=1.0)
        item.apply(seq, 1.0, now=15.0)
        assert item.time_differential(now=100.0) == 0.0

    def test_td_partial_apply_keeps_staleness_clock(self):
        """Applying an older (superseded) update does not refresh td."""
        item = DataItem("IBM")
        seq1 = item.record_arrival(now=10.0, value=1.0)
        item.record_arrival(now=20.0, value=2.0)
        item.apply(seq1, 1.0, now=25.0)
        assert item.unapplied_updates == 1
        assert item.time_differential(now=30.0) == pytest.approx(20.0)


class TestValueDistance:
    def test_vd_tracks_master_gap(self):
        item = DataItem("IBM", value=100.0)
        item.record_arrival(now=1.0, value=110.0)
        assert item.value_distance == pytest.approx(10.0)
        item.record_arrival(now=2.0, value=95.0)
        assert item.value_distance == pytest.approx(5.0)


class TestStatistics:
    def test_counters(self):
        item = DataItem("IBM")
        seq = item.record_arrival(now=1.0, value=1.0)
        item.record_superseded()
        item.apply(seq, 1.0, now=2.0)
        assert item.updates_arrived == 1
        assert item.updates_superseded == 1
        assert item.updates_applied == 1


class TestInvariants:
    @given(st.lists(st.sampled_from(["arrive", "apply"]),
                    min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_uu_never_negative_and_apply_monotone(self, script):
        """Under any arrive/apply interleaving, #uu >= 0 and applied_seq
        never decreases."""
        item = DataItem("X")
        pending_seq = None
        now = 0.0
        last_applied = 0
        for action in script:
            now += 1.0
            if action == "arrive":
                pending_seq = item.record_arrival(now, value=now)
            elif pending_seq is not None:
                item.apply(pending_seq, now, now)
            assert item.unapplied_updates >= 0
            assert item.applied_seq >= last_applied
            last_applied = item.applied_seq
            assert item.applied_seq <= item.latest_seq
