"""Unit + property tests for named random streams."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomStream, StreamRegistry, _derive_seed


class TestStreamRegistry:
    def test_same_name_same_stream_object(self):
        registry = StreamRegistry(0)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_different_sequences(self):
        registry = StreamRegistry(0)
        a = [registry.stream("a").random() for __ in range(5)]
        b = [registry.stream("b").random() for __ in range(5)]
        assert a != b

    def test_same_seed_reproducible(self):
        first = [StreamRegistry(7).stream("x").random() for __ in range(3)]
        second = [StreamRegistry(7).stream("x").random() for __ in range(3)]
        assert first == second

    def test_different_master_seeds_differ(self):
        a = StreamRegistry(1).stream("x").random()
        b = StreamRegistry(2).stream("x").random()
        assert a != b

    def test_spawn_is_deterministic_and_distinct(self):
        parent = StreamRegistry(5)
        child_a = parent.spawn("run1")
        child_b = parent.spawn("run1")
        assert child_a.master_seed == child_b.master_seed
        assert child_a.master_seed != parent.master_seed
        assert parent.spawn("run2").master_seed != child_a.master_seed

    def test_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        registry_a = StreamRegistry(0)
        registry_a.stream("noise").random()  # consume
        value_a = registry_a.stream("signal").random()

        registry_b = StreamRegistry(0)
        value_b = registry_b.stream("signal").random()
        assert value_a == value_b

    @given(st.integers(min_value=0, max_value=2**31),
           st.text(min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_derive_seed_is_stable_64bit(self, master, name):
        seed = _derive_seed(master, name)
        assert 0 <= seed < 2 ** 64
        assert seed == _derive_seed(master, name)


class TestDistributions:
    def test_exponential_mean(self):
        rng = RandomStream(0, "t")
        samples = [rng.exponential(10.0) for __ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.05)

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ValueError):
            RandomStream(0, "t").exponential(0.0)

    def test_zipf_rank_in_range(self):
        rng = RandomStream(1, "z")
        for __ in range(1000):
            rank = rng.zipf_rank(100, 0.9)
            assert 1 <= rank <= 100

    def test_zipf_rank_skew(self):
        """Rank 1 must be drawn far more often than rank 50."""
        rng = RandomStream(2, "z")
        counts = {}
        for __ in range(20_000):
            rank = rng.zipf_rank(100, 1.0)
            counts[rank] = counts.get(rank, 0) + 1
        assert counts.get(1, 0) > 10 * counts.get(50, 1)

    def test_zipf_theta_zero_is_uniformish(self):
        rng = RandomStream(3, "z")
        counts = [0] * 10
        for __ in range(20_000):
            counts[rng.zipf_rank(10, 0.0) - 1] += 1
        assert max(counts) < 1.25 * min(counts)

    def test_zipf_invalid_n(self):
        with pytest.raises(ValueError):
            RandomStream(0, "z").zipf_rank(0, 1.0)

    @given(st.floats(min_value=0.1, max_value=2.0),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=30)
    def test_zipf_rank_always_valid(self, theta, n):
        rng = RandomStream(0, "prop")
        for __ in range(20):
            assert 1 <= rng.zipf_rank(n, theta) <= n

    def test_bounded_pareto_within_bounds(self):
        rng = RandomStream(4, "p")
        for __ in range(1000):
            value = rng.bounded_pareto(1.5, 1.0, 100.0)
            assert 1.0 <= value <= 100.0 + 1e-9

    def test_bounded_pareto_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RandomStream(0, "p").bounded_pareto(1.5, 10.0, 1.0)

    def test_repr_contains_name(self):
        assert "quotes" in repr(RandomStream(0, "quotes"))


class TestZipfCdfCache:
    def test_cdf_terminates_at_one(self):
        from repro.sim.rng import _zipf_cdf
        cdf = _zipf_cdf(50, 0.8)
        assert cdf[-1] == 1.0
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))

    def test_cache_returns_same_object(self):
        from repro.sim.rng import _zipf_cdf
        assert _zipf_cdf(64, 0.9) is _zipf_cdf(64, 0.9)

    def test_monotone_decreasing_mass(self):
        from repro.sim.rng import _zipf_cdf
        cdf = _zipf_cdf(20, 1.2)
        masses = [cdf[0]] + [b - a for a, b in zip(cdf, cdf[1:])]
        assert all(m1 >= m2 - 1e-12 for m1, m2 in zip(masses, masses[1:]))
        assert math.isclose(sum(masses), 1.0, rel_tol=1e-9)
