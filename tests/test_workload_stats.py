"""Unit tests for trace statistics (Figure 5 / Table 3 extraction)."""

import pytest

from repro.workload.stats import (per_stock_counts, query_rate_series,
                                  summarize, update_rate_series)
from repro.workload.traces import QueryRecord, Trace, UpdateRecord


def trace_with(queries=(), updates=(), duration=10_000.0):
    return Trace(list(queries), list(updates), duration_ms=duration)


class TestRateSeries:
    def test_counts_per_second(self):
        trace = trace_with(
            queries=[QueryRecord(100.0, ("A",), 5.0),
                     QueryRecord(900.0, ("A",), 5.0),
                     QueryRecord(1500.0, ("B",), 5.0)],
            duration=3_000.0)
        rates = query_rate_series(trace)
        assert rates.counts == (2, 1, 0)
        assert rates.seconds == (0.0, 1.0, 2.0)

    def test_arrival_at_duration_lands_in_last_bucket(self):
        trace = trace_with(
            updates=[UpdateRecord(2_000.0, "A", 1.0)],
            duration=2_000.0)
        rates = update_rate_series(trace)
        assert sum(rates.counts) == 1

    def test_mean_and_max(self):
        trace = trace_with(
            queries=[QueryRecord(t, ("A",), 5.0)
                     for t in (0.0, 1.0, 2.0, 1500.0)],
            duration=2_000.0)
        rates = query_rate_series(trace)
        assert rates.maximum == 3
        assert rates.mean == pytest.approx(2.0)

    def test_half_means(self):
        trace = trace_with(
            updates=[UpdateRecord(t, "A", 1.0)
                     for t in (0.0, 100.0, 200.0, 3500.0)],
            duration=4_000.0)
        rates = update_rate_series(trace)
        assert rates.first_half_mean() == pytest.approx(1.5)
        assert rates.second_half_mean() == pytest.approx(0.5)


class TestPerStockCounts:
    def test_multi_item_queries_count_each_item(self):
        trace = trace_with(
            queries=[QueryRecord(0.0, ("A", "B"), 5.0)],
            updates=[UpdateRecord(0.0, "A", 1.0)])
        counts = per_stock_counts(trace)
        assert counts.queries == {"A": 1, "B": 1}
        assert counts.updates == {"A": 1}

    def test_scatter_includes_all_touched(self):
        trace = trace_with(
            queries=[QueryRecord(0.0, ("A",), 5.0)],
            updates=[UpdateRecord(0.0, "B", 1.0)])
        scatter = per_stock_counts(trace).scatter()
        assert scatter == [("A", 1, 0), ("B", 0, 1)]

    def test_fraction_below_diagonal(self):
        trace = trace_with(
            queries=[QueryRecord(0.0, ("A",), 5.0)],
            updates=[UpdateRecord(0.0, "A", 1.0),
                     UpdateRecord(1.0, "A", 1.0),
                     UpdateRecord(2.0, "B", 1.0)])
        counts = per_stock_counts(trace)
        # A: 2 updates > 1 query (below); B: 1 update > 0 queries (below).
        assert counts.fraction_below_diagonal() == 1.0

    def test_empty_trace(self):
        counts = per_stock_counts(trace_with())
        assert counts.fraction_below_diagonal() == 0.0
        assert counts.scatter() == []


class TestSummary:
    def test_summarize_empty(self):
        summary = summarize(trace_with())
        assert summary.n_queries == 0
        assert summary.query_exec_min_ms == 0.0

    def test_summarize_values(self):
        trace = trace_with(
            queries=[QueryRecord(0.0, ("A",), 5.0),
                     QueryRecord(1.0, ("B",), 9.0)],
            updates=[UpdateRecord(0.0, "C", 1.0)],
            duration=60_000.0)
        summary = summarize(trace)
        assert summary.n_queries == 2
        assert summary.n_updates == 1
        assert summary.n_stocks == 3
        assert summary.duration_s == 60.0
        assert summary.query_exec_min_ms == 5.0
        assert summary.query_exec_max_ms == 9.0
