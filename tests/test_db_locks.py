"""Unit tests for the 2PL-HP lock manager."""

import pytest

from repro.db.locks import AcquireOutcome, LockManager, LockMode
from repro.db.transactions import Query, Update
from repro.qc.contracts import QualityContract


def query(items=("A",), at=0.0):
    return Query(arrival_time=at, exec_time=7.0, items=items,
                 qc=QualityContract.free())


def update(item="A", at=0.0):
    return Update(arrival_time=at, exec_time=2.0, item=item)


class TestGrants:
    def test_uncontended_read_grant(self):
        locks = LockManager()
        q = query(("A", "B"))
        result = locks.acquire_all(q, LockMode.READ)
        assert result.granted
        assert locks.locks_of(q) == {"A", "B"}
        assert locks.mode_of("A") is LockMode.READ

    def test_uncontended_write_grant(self):
        locks = LockManager()
        u = update("A")
        assert locks.acquire_all(u, LockMode.WRITE).granted
        assert locks.mode_of("A") is LockMode.WRITE

    def test_shared_reads_compatible(self):
        locks = LockManager()
        q1, q2 = query(("A",)), query(("A",))
        assert locks.acquire_all(q1, LockMode.READ).granted
        result = locks.acquire_all(q2, LockMode.READ).granted
        assert result
        assert locks.holders_of("A") == {q1, q2}
        assert locks.conflicts == 0

    def test_reacquire_own_locks_idempotent(self):
        """A resumed transaction re-acquires what it already holds."""
        locks = LockManager()
        q = query(("A", "B"))
        locks.acquire_all(q, LockMode.READ)
        result = locks.acquire_all(q, LockMode.READ)
        assert result.granted
        assert result.restarted == ()
        assert locks.locks_of(q) == {"A", "B"}


class TestConflictResolution:
    def test_high_priority_requester_restarts_holder(self):
        locks = LockManager(has_priority=lambda r, h: True)
        q = query(("A",))
        u = update("A")
        locks.acquire_all(q, LockMode.READ)
        result = locks.acquire_all(u, LockMode.WRITE)
        assert result.granted
        assert result.restarted == (q,)
        assert locks.locks_of(q) == frozenset()
        assert locks.holders_of("A") == {u}
        assert locks.restarts_caused == 1

    def test_low_priority_requester_blocks(self):
        locks = LockManager(has_priority=lambda r, h: False)
        q = query(("A",))
        u = update("A")
        locks.acquire_all(q, LockMode.READ)
        result = locks.acquire_all(u, LockMode.WRITE)
        assert result.outcome is AcquireOutcome.BLOCKED
        assert result.blocking_holders == (q,)
        # Nothing acquired for the blocked requester.
        assert locks.locks_of(u) == frozenset()
        assert locks.holders_of("A") == {q}
        assert locks.blocks_caused == 1

    def test_write_blocks_read_when_holder_outranks(self):
        locks = LockManager(has_priority=lambda r, h: False)
        u = update("A")
        q = query(("A",))
        locks.acquire_all(u, LockMode.WRITE)
        result = locks.acquire_all(q, LockMode.READ)
        assert not result.granted

    def test_multiple_holders_all_restarted(self):
        locks = LockManager()
        q1, q2 = query(("A",)), query(("A",))
        locks.acquire_all(q1, LockMode.READ)
        locks.acquire_all(q2, LockMode.READ)
        result = locks.acquire_all(update("A"), LockMode.WRITE)
        assert result.granted
        assert set(result.restarted) == {q1, q2}

    def test_mixed_blockers_and_losers_block_wins(self):
        """If any conflicting holder outranks the requester, nothing is
        restarted and the requester blocks."""
        q1, q2 = query(("A",)), query(("A",))
        # q1 outranks everything, q2 outranks nothing.
        locks = LockManager(
            has_priority=lambda r, h: h is q2)
        locks.acquire_all(q1, LockMode.READ)
        locks.acquire_all(q2, LockMode.READ)
        result = locks.acquire_all(update("A"), LockMode.WRITE)
        assert not result.granted
        assert q1 in result.blocking_holders
        # The weaker holder must NOT have been restarted.
        assert locks.holders_of("A") == {q1, q2}

    def test_conflict_counter_increments(self):
        locks = LockManager()
        locks.acquire_all(query(("A",)), LockMode.READ)
        locks.acquire_all(update("A"), LockMode.WRITE)
        assert locks.conflicts == 1


class TestRelease:
    def test_release_all_frees_keys(self):
        locks = LockManager()
        q = query(("A", "B"))
        locks.acquire_all(q, LockMode.READ)
        freed = locks.release_all(q)
        assert freed == {"A", "B"}
        assert locks.holders_of("A") == frozenset()
        assert locks.mode_of("A") is None

    def test_release_unknown_txn_is_noop(self):
        locks = LockManager()
        assert locks.release_all(query()) == frozenset()

    def test_release_one_shared_reader_keeps_entry(self):
        locks = LockManager()
        q1, q2 = query(("A",)), query(("A",))
        locks.acquire_all(q1, LockMode.READ)
        locks.acquire_all(q2, LockMode.READ)
        locks.release_all(q1)
        assert locks.holders_of("A") == {q2}

    def test_grant_after_release(self):
        locks = LockManager(has_priority=lambda r, h: False)
        q = query(("A",))
        u = update("A")
        locks.acquire_all(q, LockMode.READ)
        assert not locks.acquire_all(u, LockMode.WRITE).granted
        locks.release_all(q)
        assert locks.acquire_all(u, LockMode.WRITE).granted


class TestPriorityPredicateSwap:
    def test_set_priority_predicate(self):
        locks = LockManager(has_priority=lambda r, h: False)
        locks.acquire_all(query(("A",)), LockMode.READ)
        assert not locks.acquire_all(update("A"), LockMode.WRITE).granted
        locks.set_priority_predicate(lambda r, h: True)
        assert locks.acquire_all(update("A"), LockMode.WRITE).granted
