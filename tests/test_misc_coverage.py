"""Targeted tests for remaining configuration paths and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, TxnStatus, Update
from repro.metrics.profit import ProfitLedger
from repro.qc.contracts import CompositionMode, QualityContract
from repro.scheduling import make_uh
from repro.sim import Environment
from repro.sim.rng import StreamRegistry

nonneg = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestDropLateQueriesOff:
    def test_late_query_still_commits_when_dropping_disabled(self):
        env = Environment()
        ledger = ProfitLedger()
        server = DatabaseServer(
            env, Database(), make_uh(), ledger, StreamRegistry(0),
            config=ServerConfig(class_switch_overhead=0.0,
                                drop_late_queries=False))

        def scenario(env):
            query = Query(0.0, 7.0, ("A",),
                          QualityContract.step(10, 50, 10, 1,
                                               lifetime=10.0))
            server.submit_query(query)
            for k in range(10):
                server.submit_update(Update(0.0, 2.0, f"U{k}"))
            yield env.timeout(0)
            return query

        proc = env.process(scenario(env))
        env.run(until=200.0)
        query = proc.value
        # Past its 10 ms lifetime, but dropping is disabled: it commits.
        assert query.status is TxnStatus.COMMITTED
        assert query.finish_time > 10.0
        assert ledger.counters.value("queries_dropped_lifetime") == 0


class TestContractEvaluationBounds:
    @given(nonneg, nonneg, st.floats(min_value=1.0, max_value=1e4),
           st.floats(min_value=0.5, max_value=100.0), nonneg, nonneg)
    @settings(max_examples=150)
    def test_step_evaluation_bounded(self, qosmax, qodmax, rtmax, uumax,
                                     rt, staleness):
        qc = QualityContract.step(qosmax, rtmax, qodmax, uumax)
        qos, qod = qc.evaluate(rt, staleness)
        assert 0.0 <= qos <= qosmax
        assert 0.0 <= qod <= qodmax
        assert qos in (0.0, qosmax)
        assert qod in (0.0, qodmax)

    @given(nonneg, nonneg, st.floats(min_value=1.0, max_value=1e4),
           st.floats(min_value=0.5, max_value=100.0), nonneg, nonneg)
    @settings(max_examples=150)
    def test_linear_evaluation_bounded(self, qosmax, qodmax, rtmax, uumax,
                                       rt, staleness):
        qc = QualityContract.linear(qosmax, rtmax, qodmax, uumax)
        qos, qod = qc.evaluate(rt, staleness)
        assert 0.0 <= qos <= qosmax
        assert 0.0 <= qod <= qodmax

    @given(nonneg, nonneg, nonneg, nonneg)
    @settings(max_examples=100)
    def test_dependent_never_exceeds_independent(self, qosmax, qodmax,
                                                 rt, staleness):
        independent = QualityContract.step(
            qosmax, 50.0, qodmax, 1.0,
            mode=CompositionMode.QOS_INDEPENDENT)
        dependent = QualityContract.step(
            qosmax, 50.0, qodmax, 1.0,
            mode=CompositionMode.QOS_DEPENDENT)
        ind = sum(independent.evaluate(rt, staleness))
        dep = sum(dependent.evaluate(rt, staleness))
        assert dep <= ind + 1e-12


class TestCLIFig9Smoke:
    def test_fig9_smoke(self, capsys):
        assert main(["fig9", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "mean rho" in out
        assert "rho over time" in out
