"""Tests for ``repro.sim.sanitizer`` and the ``repro sanitize`` harness.

The detector's contract has three parts, and each gets adversarial
coverage: (1) real same-timestamp conflicts are reported with both
events' suspension locations; (2) causally ordered same-timestamp
chains — the normal shape of a discrete-event program — never fire it;
(3) running under the sanitizer changes nothing: fingerprints are
byte-identical with tracking on, off, or under eid permutation on a
clean workload.
"""

from __future__ import annotations

import pytest

from repro.db.transactions import Update
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_simulation
from repro.experiments.sanitize import (PLANTED_SET_ITER_LINE, Scenario,
                                        check_perturbation, check_races,
                                        planted_order_findings,
                                        planted_set_iter_findings,
                                        result_fingerprint,
                                        sanitize_scenarios)
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.sim import Environment
from repro.sim.environment import HeapEnvironment
from repro.sim.process import Event_NORMAL, Event_URGENT
from repro.sim.sanitizer import (Sanitizer, SanitizerError,
                                 _PermutedCounter)
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec


def _tiny_trace(duration_ms=2_000.0, seed=3):
    return StockWorkloadGenerator(WorkloadSpec().scaled(duration_ms),
                                  master_seed=seed).generate()


def _race_env():
    env = Environment()
    sanitizer = Sanitizer(track_state=True)
    sanitizer.install(env)
    return env, sanitizer


def _two_procs(env, sanitizer, first, second, delay=5.0):
    """Two processes created up front, both acting at the same time."""
    def proc(action):
        yield env.timeout(delay)
        action()
    env.process(proc(first), name="first")
    env.process(proc(second), name="second")
    env.run(until=delay * 4)
    sanitizer.finish()
    return sanitizer.findings


# ----------------------------------------------------------------------
class TestRaceDetection:
    def test_write_write_race_reported_with_locations(self):
        env, sanitizer = _race_env()
        findings = _two_procs(env, sanitizer,
                              lambda: sanitizer.log_write("cell"),
                              lambda: sanitizer.log_write("cell"))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == "write/write"
        assert finding.cells == ("cell",)
        assert finding.time == pytest.approx(5.0)
        # Both sides carry a label naming the process and a real
        # suspension location in this test file.
        assert "first" in finding.first.label
        assert "second" in finding.second.label
        assert finding.first.path.endswith("test_sanitizer.py")
        assert finding.first.line > 0
        assert finding.first.eid < finding.second.eid
        assert "eid tie-break" in finding.format()

    def test_read_write_conflict_reported(self):
        env, sanitizer = _race_env()
        findings = _two_procs(env, sanitizer,
                              lambda: sanitizer.log_read("cell"),
                              lambda: sanitizer.log_write("cell"))
        assert [finding.kind for finding in findings] == ["read/write"]

    def test_read_read_commutes(self):
        env, sanitizer = _race_env()
        findings = _two_procs(env, sanitizer,
                              lambda: sanitizer.log_read("cell"),
                              lambda: sanitizer.log_read("cell"))
        assert findings == []

    def test_incr_incr_commutes(self):
        env, sanitizer = _race_env()
        findings = _two_procs(env, sanitizer,
                              lambda: sanitizer.log_incr("cell"),
                              lambda: sanitizer.log_incr("cell"))
        assert findings == []

    def test_incr_read_conflicts(self):
        env, sanitizer = _race_env()
        findings = _two_procs(env, sanitizer,
                              lambda: sanitizer.log_incr("cell"),
                              lambda: sanitizer.log_read("cell"))
        assert [finding.kind for finding in findings] == \
            ["increment/read"]

    def test_distinct_cells_commute(self):
        env, sanitizer = _race_env()
        findings = _two_procs(env, sanitizer,
                              lambda: sanitizer.log_write("a"),
                              lambda: sanitizer.log_write("b"))
        assert findings == []

    def test_causal_chain_at_same_timestamp_is_quiet(self):
        # write -> zero-delay continuation -> write again: the second
        # dispatch's event was created *during* the first (eid above
        # the watermark), so the pair is causally ordered, not a race.
        env, sanitizer = _race_env()

        def chain():
            yield env.timeout(5.0)
            sanitizer.log_write("cell")
            yield env.timeout(0.0)
            sanitizer.log_write("cell")

        env.process(chain(), name="chain")
        env.run(until=20.0)
        sanitizer.finish()
        assert sanitizer.findings == []

    def test_priority_ordered_events_are_not_grouped(self):
        # Same timestamp, different priorities: dispatch order is fixed
        # by the priority lane, so conflicting accesses are fine.
        env, sanitizer = _race_env()
        urgent, normal = env.event(), env.event()
        for event in (urgent, normal):
            event._ok = True  # pre-triggered, like a Timeout
            event.callbacks.append(
                lambda event: sanitizer.log_write("cell"))
        env.schedule(urgent, delay=5.0, priority=Event_URGENT)
        env.schedule(normal, delay=5.0, priority=Event_NORMAL)
        env.run(until=20.0)
        sanitizer.finish()
        assert sanitizer.findings == []

    def test_different_timestamps_are_not_grouped(self):
        env, sanitizer = _race_env()

        def proc(delay):
            yield env.timeout(delay)
            sanitizer.log_write("cell")

        env.process(proc(5.0), name="early")
        env.process(proc(6.0), name="late")
        env.run(until=20.0)
        sanitizer.finish()
        assert sanitizer.findings == []

    def test_max_findings_caps_the_report(self):
        env = Environment()
        sanitizer = Sanitizer(track_state=True, max_findings=1)
        sanitizer.install(env)
        findings = _two_procs(
            env, sanitizer,
            lambda: (sanitizer.log_write("a"), sanitizer.log_write("b")),
            lambda: (sanitizer.log_write("a"), sanitizer.log_write("b")))
        assert len(findings) == 1


# ----------------------------------------------------------------------
class TestTrackedState:
    def test_tracked_database_races_on_shared_key(self):
        env, sanitizer = _race_env()
        database = sanitizer.tracked_database()

        def writer(value):
            yield env.timeout(5.0)
            database.register_update(
                Update(env.now, 1.0, "KEY", value=value), env.now)

        env.process(writer(1.0), name="w1")
        env.process(writer(2.0), name="w2")
        env.run(until=20.0)
        sanitizer.finish()
        kinds = {finding.kind for finding in sanitizer.findings}
        assert "write/write" in kinds
        assert any("db.items[KEY]" in finding.cells
                   for finding in sanitizer.findings)

    def test_tracked_database_reads_commute(self):
        env, sanitizer = _race_env()
        database = sanitizer.tracked_database()
        database.item("KEY")  # materialise the key outside the run

        def reader():
            yield env.timeout(5.0)
            database.read("KEY")

        env.process(reader(), name="r1")
        env.process(reader(), name="r2")
        env.run(until=20.0)
        sanitizer.finish()
        assert sanitizer.findings == []

    def test_track_scheduler_wraps_queue_mutators(self):
        sanitizer = Sanitizer(track_state=True)
        scheduler = make_scheduler("QUTS")
        sanitizer.track_scheduler(scheduler)
        # The wrappers live on the instance, shadowing the class.
        assert "submit_query" in vars(scheduler)
        assert "next_transaction" in vars(scheduler)
        assert "_adapt" in vars(scheduler)


# ----------------------------------------------------------------------
class TestModesAndMisuse:
    def test_salt_with_tracking_rejected(self):
        with pytest.raises(SanitizerError):
            Sanitizer(track_state=True, salt=1)

    def test_install_on_used_environment_rejected(self):
        env = Environment()
        env.timeout(1.0)
        with pytest.raises(SanitizerError):
            Sanitizer().install(env)

    def test_double_install_rejected(self):
        env = Environment()
        Sanitizer().install(env)
        with pytest.raises(SanitizerError):
            Sanitizer().install(env)

    def test_permuted_counter_is_a_bijection(self):
        counter = _PermutedCounter(salt=7)
        drawn = [next(counter) for _ in range(4096)]
        assert len(set(drawn)) == len(drawn)

    def test_perturbation_flips_tiebreak_order(self):
        def order_for(salt):
            env = Environment()
            sanitizer = Sanitizer(track_state=False, salt=salt)
            sanitizer.install(env)
            out = []

            def proc(name):
                yield env.timeout(5.0)
                out.append(name)

            env.process(proc("a"), name="a")
            env.process(proc("b"), name="b")
            env.run(until=20.0)
            return out

        assert order_for(None) == ["a", "b"]
        assert order_for(1) == ["b", "a"]

    def test_heap_environment_supports_the_sanitizer(self):
        env = HeapEnvironment()
        sanitizer = Sanitizer(track_state=True)
        sanitizer.install(env)
        findings = _two_procs(env, sanitizer,
                              lambda: sanitizer.log_write("cell"),
                              lambda: sanitizer.log_write("cell"))
        assert [finding.kind for finding in findings] == ["write/write"]


# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_sanitized_run_is_byte_identical(self):
        trace = _tiny_trace()
        plain = run_simulation(make_scheduler("QUTS"), trace,
                               QCFactory.balanced(), master_seed=1)
        sanitizer = Sanitizer(track_state=True)
        tracked = run_simulation(make_scheduler("QUTS"), trace,
                                 QCFactory.balanced(), master_seed=1,
                                 sanitizer=sanitizer)
        assert result_fingerprint(plain) == result_fingerprint(tracked)
        assert sanitizer.events_seen > 0
        assert sanitizer.findings == []

    def test_scenarios_cover_fig5_and_fig9(self):
        config = ExperimentConfig(scale="smoke")
        scenarios = sanitize_scenarios(config, ["fig5", "fig9"],
                                       ["QH", "QUTS"])
        assert [scenario.name for scenario in scenarios] == \
            ["fig5/QH", "fig5/QUTS", "fig9/flip-flop"]

    def test_check_races_and_perturbation_clean_on_tiny_cell(self):
        config = ExperimentConfig(scale="smoke")
        trace = _tiny_trace()
        scenario = Scenario(
            "tiny/QH",
            lambda: (make_scheduler("QH"), trace, QCFactory.balanced()))
        findings, events = check_races(scenario, config)
        assert findings == []
        assert events > 0
        assert check_perturbation(scenario, config, [1, 2]) == []


# ----------------------------------------------------------------------
class TestPlantedBugs:
    def test_planted_order_dependence_is_detected(self):
        findings = planted_order_findings()
        hits = [finding for finding in findings
                if "db.items[PLANTED]" in finding.cells]
        assert hits, findings
        finding = hits[0]
        assert finding.kind == "write/write"
        assert "planted-a" in finding.first.label
        assert "planted-b" in finding.second.label
        assert finding.first.path.endswith("sanitize.py")

    def test_planted_set_iteration_is_detected_at_line(self):
        findings = planted_set_iter_findings()
        assert any(finding.rule_id == "no-set-iteration"
                   and finding.line == PLANTED_SET_ITER_LINE
                   for finding in findings), findings
