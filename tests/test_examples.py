"""Every example script must run end-to-end (they double as API tests).

The examples are executed in-process via their ``main()`` so failures
produce real tracebacks; each takes a few seconds of simulated workload.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_discovered():
    assert set(EXAMPLES) >= {"quickstart", "stock_portal",
                             "preference_shift", "custom_contracts",
                             "trace_tools"}


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_quickstart_reports_profit(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "profit gained" in out
    assert "mean response time" in out


def test_preference_shift_shows_rho_phases(capsys):
    load_example("preference_shift").main()
    out = capsys.readouterr().out
    assert "QoD-heavy (1:5)" in out
    assert "QoS-heavy (5:1)" in out
