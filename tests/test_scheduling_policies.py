"""Unit tests for FIFO and the dual-queue (UH/QH) schedulers."""

import pytest

from repro.db.transactions import Query, Update
from repro.qc.contracts import QualityContract
from repro.scheduling import (FIFOScheduler, make_fifo_qh, make_fifo_uh,
                              make_qh, make_scheduler, make_uh)


def query(at=0.0, qosmax=10.0, rtmax=50.0):
    return Query(arrival_time=at, exec_time=5.0, items=("A",),
                 qc=QualityContract.step(qosmax, rtmax, 10.0, 1.0))


def update(at=0.0, item="A"):
    return Update(arrival_time=at, exec_time=1.0, item=item)


class TestFIFOScheduler:
    def test_combined_arrival_order(self):
        scheduler = FIFOScheduler()
        q = query(at=1.0)
        u = update(at=0.5)
        scheduler.submit_query(q)
        scheduler.submit_update(u)
        assert scheduler.next_transaction(2.0) is u
        assert scheduler.next_transaction(2.0) is q

    def test_never_preempts(self):
        scheduler = FIFOScheduler()
        running = query(at=0.0)
        assert not scheduler.preempts(running, update(at=1.0))
        assert not scheduler.preempts(update(at=0.0), query(at=1.0))

    def test_quantum_unbounded(self):
        scheduler = FIFOScheduler()
        assert scheduler.quantum(query(), 0.0) == float("inf")

    def test_pending_counts(self):
        scheduler = FIFOScheduler()
        scheduler.submit_query(query())
        scheduler.submit_update(update())
        scheduler.submit_update(update())
        assert scheduler.pending_queries() == 1
        assert scheduler.pending_updates() == 2
        assert scheduler.has_work()

    def test_requeue_dispatches_by_class(self):
        scheduler = FIFOScheduler()
        q = query()
        scheduler.requeue(q)
        assert scheduler.next_transaction(0.0) is q


class TestUH:
    def test_updates_first(self):
        scheduler = make_uh()
        q, u = query(at=0.0), update(at=5.0)
        scheduler.submit_query(q)
        scheduler.submit_update(u)
        assert scheduler.next_transaction(10.0) is u
        assert scheduler.next_transaction(10.0) is q

    def test_update_preempts_query(self):
        scheduler = make_uh()
        assert scheduler.preempts(query(), update())
        assert not scheduler.preempts(update(), query())
        assert not scheduler.preempts(query(), query())

    def test_lock_priority_favours_updates(self):
        scheduler = make_uh()
        assert scheduler.has_lock_priority(update(), query())
        assert not scheduler.has_lock_priority(query(), update())
        assert scheduler.has_lock_priority(query(), query())

    def test_vrd_within_queries(self):
        scheduler = make_uh()
        weak = query(qosmax=1.0, rtmax=100.0)
        strong = query(qosmax=50.0, rtmax=50.0)
        scheduler.submit_query(weak)
        scheduler.submit_query(strong)
        assert scheduler.next_transaction(0.0) is strong


class TestQH:
    def test_queries_first(self):
        scheduler = make_qh()
        q, u = query(at=5.0), update(at=0.0)
        scheduler.submit_query(q)
        scheduler.submit_update(u)
        assert scheduler.next_transaction(10.0) is q
        assert scheduler.next_transaction(10.0) is u

    def test_query_preempts_update(self):
        scheduler = make_qh()
        assert scheduler.preempts(update(), query())
        assert not scheduler.preempts(query(), update())

    def test_lock_priority_favours_queries(self):
        scheduler = make_qh()
        assert scheduler.has_lock_priority(query(), update())
        assert not scheduler.has_lock_priority(update(), query())


class TestNaiveVariants:
    def test_fifo_uh_uses_fcfs_queries(self):
        scheduler = make_fifo_uh()
        late_but_valuable = query(at=5.0, qosmax=100.0)
        early = query(at=1.0, qosmax=1.0)
        scheduler.submit_query(late_but_valuable)
        scheduler.submit_query(early)
        assert scheduler.next_transaction(10.0) is early

    def test_fifo_qh_name(self):
        assert make_fifo_qh().name == "FIFO-QH"
        assert make_fifo_uh().name == "FIFO-UH"


class TestFactory:
    def test_make_scheduler_names(self):
        for name in ("FIFO", "UH", "QH", "QUTS", "FIFO-UH", "FIFO-QH"):
            assert make_scheduler(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("LIFO")

    def test_quts_kwargs(self):
        scheduler = make_scheduler("QUTS", tau=5.0, omega=500.0)
        assert scheduler.tau == 5.0
        assert scheduler.omega == 500.0

    def test_kwargs_rejected_for_fixed_policies(self):
        with pytest.raises(ValueError):
            make_scheduler("UH", tau=5.0)

    def test_invalid_high_class(self):
        from repro.scheduling.dual import DualQueueScheduler
        with pytest.raises(ValueError):
            DualQueueScheduler("neither")  # type: ignore[arg-type]
