"""Tests for the replicated-portal extension."""

import pytest

from repro.cluster import (LeastLoadedRouter, NoHealthyReplica,
                           QCAwareRouter, ReplicatedPortal,
                           RoundRobinRouter, run_cluster_simulation)
from repro.db.server import ServerConfig
from repro.db.transactions import Query
from repro.qc.contracts import QualityContract
from repro.qc.generator import QCFactory
from repro.scheduling import make_qh
from repro.scheduling.quts import QUTSScheduler
from repro.sim import Environment
from repro.sim.rng import StreamRegistry
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec


def step_query(qosmax=10.0, qodmax=10.0, at=0.0):
    return Query(at, 7.0, ("A",),
                 QualityContract.step(qosmax, 50.0, qodmax, 1.0))


class _FakeReplica:
    def __init__(self, pending_q, pending_u):
        self._q, self._u = pending_q, pending_u

    def pending_queries(self):
        return self._q

    def pending_updates(self):
        return self._u


class _DeadReplica(_FakeReplica):
    up = False

    def __init__(self):
        super().__init__(0, 0)


class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        replicas = [_FakeReplica(0, 0)] * 3
        picks = [router.choose(step_query(), replicas) for __ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_minimum(self):
        router = LeastLoadedRouter()
        replicas = [_FakeReplica(5, 0), _FakeReplica(2, 0),
                    _FakeReplica(9, 0)]
        assert router.choose(step_query(), replicas) == 1

    def test_least_loaded_tie_lowest_index(self):
        router = LeastLoadedRouter()
        replicas = [_FakeReplica(2, 0), _FakeReplica(2, 0)]
        assert router.choose(step_query(), replicas) == 0

    def test_qc_aware_routes_qod_heavy_to_freshest(self):
        router = QCAwareRouter()
        replicas = [_FakeReplica(0, 9), _FakeReplica(9, 1)]
        fresh_lover = step_query(qosmax=1.0, qodmax=99.0)
        assert router.choose(fresh_lover, replicas) == 1

    def test_qc_aware_routes_qos_heavy_to_least_loaded(self):
        router = QCAwareRouter()
        replicas = [_FakeReplica(0, 9), _FakeReplica(9, 1)]
        speed_lover = step_query(qosmax=99.0, qodmax=1.0)
        assert router.choose(speed_lover, replicas) == 0

    def test_qc_aware_threshold_validation(self):
        with pytest.raises(ValueError):
            QCAwareRouter(qod_threshold=1.5)

    @pytest.mark.parametrize("router_factory", [
        RoundRobinRouter, LeastLoadedRouter, QCAwareRouter])
    def test_single_replica_always_chosen(self, router_factory):
        router = router_factory()
        replicas = [_FakeReplica(3, 7)]
        picks = [router.choose(step_query(), replicas) for __ in range(3)]
        assert picks == [0, 0, 0]

    @pytest.mark.parametrize("router_factory", [
        RoundRobinRouter, LeastLoadedRouter, QCAwareRouter])
    def test_all_dead_raises_no_healthy_replica(self, router_factory):
        replicas = [_DeadReplica(), _DeadReplica()]
        with pytest.raises(NoHealthyReplica):
            router_factory().choose(step_query(), replicas)

    def test_replicas_without_health_bit_treated_as_up(self):
        # Plain stand-ins (no crash lifecycle) must keep routing.
        router = LeastLoadedRouter()
        replicas = [_FakeReplica(5, 0), _FakeReplica(1, 0)]
        assert router.choose(step_query(), replicas) == 1


class TestPortal:
    def test_requires_replicas(self):
        env = Environment()
        with pytest.raises(ValueError):
            ReplicatedPortal(env, 0, QUTSScheduler, StreamRegistry(0))

    def test_broadcast_reaches_every_replica(self):
        env = Environment()
        portal = ReplicatedPortal(env, 3, make_qh, StreamRegistry(0),
                                  server_config=ServerConfig(
                                      class_switch_overhead=0.0))

        def scenario(env):
            portal.broadcast_update(0.0, 2.0, "IBM", value=42.0)
            yield env.timeout(0)

        env.process(scenario(env))
        env.run(until=100.0)
        for replica in portal.replicas:
            assert replica.server.database.read("IBM") == 42.0
        assert portal.counters()["updates_applied"] == 3

    def test_query_served_by_one_replica(self):
        env = Environment()
        portal = ReplicatedPortal(env, 2, make_qh, StreamRegistry(0))

        def scenario(env):
            portal.submit_query(step_query())
            yield env.timeout(0)

        env.process(scenario(env))
        env.run(until=100.0)
        assert portal.counters()["queries_committed"] == 1
        assert sum(portal.routed_counts) == 1


class TestClusterRunner:
    @pytest.fixture(scope="class")
    def trace(self):
        return StockWorkloadGenerator(WorkloadSpec().scaled(15_000.0),
                                      master_seed=11).generate()

    def test_conservation_across_cluster(self, trace):
        result = run_cluster_simulation(2, QUTSScheduler, trace,
                                        QCFactory.balanced(),
                                        master_seed=1)
        c = result.counters
        queries = (c.get("queries_committed", 0)
                   + c.get("queries_dropped_lifetime", 0)
                   + c.get("queries_unfinished", 0))
        assert queries == len(trace.queries)
        # Every replica sees every update.
        updates = (c.get("updates_applied", 0)
                   + c.get("updates_superseded", 0)
                   + c.get("updates_unfinished", 0))
        assert updates == 2 * len(trace.updates)

    def test_two_replicas_beat_one_on_latency(self, trace):
        single = run_cluster_simulation(1, QUTSScheduler, trace,
                                        QCFactory.balanced(),
                                        master_seed=1)
        double = run_cluster_simulation(2, QUTSScheduler, trace,
                                        QCFactory.balanced(),
                                        master_seed=1)
        assert double.mean_response_time <= single.mean_response_time
        assert double.total_percent >= single.total_percent - 0.01

    def test_single_replica_matches_single_server_shape(self, trace):
        from repro.experiments.runner import run_simulation
        cluster = run_cluster_simulation(1, QUTSScheduler, trace,
                                         QCFactory.balanced(),
                                         master_seed=1)
        single = run_simulation(QUTSScheduler(), trace,
                                QCFactory.balanced(), master_seed=1)
        # Not bit-identical (replica RNG streams are namespaced), but the
        # same workload at the same scale must land very close.
        assert cluster.total_percent == pytest.approx(
            single.total_percent, abs=0.03)

    def test_routers_balance_or_bias_as_designed(self, trace):
        rr = run_cluster_simulation(2, QUTSScheduler, trace,
                                    QCFactory.balanced(), master_seed=1,
                                    router=RoundRobinRouter())
        assert abs(rr.routed_counts[0] - rr.routed_counts[1]) <= 1

        qc = run_cluster_simulation(2, QUTSScheduler, trace,
                                    QCFactory.balanced(), master_seed=1,
                                    router=QCAwareRouter())
        assert sum(qc.routed_counts) == len(trace.queries)
        # QC-aware routing must not lose to round-robin.
        assert qc.total_percent >= rr.total_percent - 0.02
