"""Tests for the synthetic Stock.com/NYSE workload generator.

These assert the *published* trace characteristics of Table 3 / Figure 5 on
a scaled-down (60 s) trace, where rates are identical by construction.
"""

import dataclasses
import math

import pytest

from repro.sim.rng import RandomStream
from repro.workload.stats import (per_stock_counts, query_rate_series,
                                  summarize, update_rate_series)
from repro.workload.stocks import StockUniverse, ticker_symbol
from repro.workload.synthetic import (PAPER_DURATION_MS, PAPER_N_QUERIES,
                                      PAPER_N_UPDATES, CrowdEpisode,
                                      StockWorkloadGenerator, WorkloadSpec,
                                      _geometric, _poisson, paper_trace)


@pytest.fixture(scope="module")
def trace60():
    return StockWorkloadGenerator(WorkloadSpec().scaled(60_000.0),
                                  master_seed=7).generate()


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"duration_ms": 0.0},
        {"n_stocks": 0},
        {"read_set_pmf": (0.5, 0.2)},
        {"query_rate_wobble": 1.5},
        {"update_rate_trend": 1.0},
        {"update_burst_mean": 0.5},
        {"update_exec_mean_ms": 5.0},
        {"popularity_correlation": 2.0},
    ])
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)

    def test_scaled_keeps_rates(self):
        spec = WorkloadSpec().scaled(60_000.0)
        assert spec.duration_ms == 60_000.0
        assert spec.query_rate_per_s == WorkloadSpec().query_rate_per_s

    def test_offered_load_near_saturation(self):
        """The default workload rides the edge of saturation (DESIGN.md)."""
        assert 0.95 <= WorkloadSpec().offered_load <= 1.10

    def test_crowd_mass_factor_above_one(self):
        assert WorkloadSpec().crowd_mass_factor > 1.0
        flat = dataclasses.replace(WorkloadSpec(), crowds_per_5min=0.0)
        assert flat.crowd_mass_factor == 1.0


class TestTable3Characteristics:
    def test_query_count_matches_scaled_paper_total(self, trace60):
        expected = PAPER_N_QUERIES * 60_000.0 / PAPER_DURATION_MS
        assert len(trace60.queries) == pytest.approx(expected, rel=0.15)

    def test_update_count_matches_scaled_paper_total(self, trace60):
        expected = PAPER_N_UPDATES * 60_000.0 / PAPER_DURATION_MS
        assert len(trace60.updates) == pytest.approx(expected, rel=0.15)

    def test_query_exec_range(self, trace60):
        assert all(5.0 <= q.exec_ms <= 9.0 for q in trace60.queries)

    def test_update_exec_range(self, trace60):
        assert all(1.0 <= u.exec_ms <= 5.0 for u in trace60.updates)

    def test_update_exec_mean_is_skewed(self, trace60):
        mean = (sum(u.exec_ms for u in trace60.updates)
                / len(trace60.updates))
        assert mean == pytest.approx(WorkloadSpec().update_exec_mean_ms,
                                     rel=0.05)

    def test_summary_rows_render(self, trace60):
        rows = dict(summarize(trace60).rows())
        assert rows["# queries"] == str(len(trace60.queries))
        assert "5 ~ 9ms" in rows["query execution time"]


class TestFigure5Characteristics:
    def test_5a_query_rate_roughly_stationary(self, trace60):
        rates = query_rate_series(trace60)
        # Base rate halves differ by much less than the update trend.
        assert rates.first_half_mean() == pytest.approx(
            rates.second_half_mean(), rel=0.5)

    def test_5b_update_rate_downward_trend(self, trace60):
        rates = update_rate_series(trace60)
        assert rates.first_half_mean() > rates.second_half_mean()

    def test_5c_most_stocks_below_diagonal(self, trace60):
        """Most stocks receive more updates than queries."""
        counts = per_stock_counts(trace60)
        assert counts.fraction_below_diagonal() > 0.5

    def test_5c_zipf_concentration(self, trace60):
        counts = per_stock_counts(trace60)
        by_updates = sorted(counts.updates.values(), reverse=True)
        top_10_share = sum(by_updates[:10]) / sum(by_updates)
        assert top_10_share > 0.10  # heavily skewed vs uniform (~0.2%)

    def test_read_sets_within_configured_sizes(self, trace60):
        sizes = {len(q.items) for q in trace60.queries}
        assert sizes <= {1, 2, 3}
        assert 1 in sizes

    def test_read_sets_have_distinct_items(self, trace60):
        for q in trace60.queries:
            assert len(set(q.items)) == len(q.items)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        spec = WorkloadSpec().scaled(10_000.0)
        a = StockWorkloadGenerator(spec, master_seed=3).generate()
        b = StockWorkloadGenerator(spec, master_seed=3).generate()
        assert a.queries == b.queries
        assert a.updates == b.updates

    def test_different_seed_different_trace(self):
        spec = WorkloadSpec().scaled(10_000.0)
        a = StockWorkloadGenerator(spec, master_seed=3).generate()
        b = StockWorkloadGenerator(spec, master_seed=4).generate()
        assert a.queries != b.queries

    def test_paper_trace_helper(self):
        trace = paper_trace(master_seed=1, duration_ms=5_000.0)
        assert trace.duration_ms == 5_000.0
        assert trace.queries and trace.updates


class TestCrowds:
    def test_crowd_factor(self):
        crowd = CrowdEpisode(10.0, 20.0, 3.0)
        assert crowd.factor_at(9.9) == 1.0
        assert crowd.factor_at(10.0) == 3.0
        assert crowd.factor_at(19.9) == 3.0
        assert crowd.factor_at(20.0) == 1.0

    def test_generator_records_crowds(self):
        generator = StockWorkloadGenerator(
            WorkloadSpec().scaled(300_000.0), master_seed=7)
        generator.generate()
        assert generator.crowds
        for crowd in generator.crowds:
            assert 0.0 <= crowd.start_ms < crowd.end_ms
            assert crowd.multiplier >= 1.0

    def test_rate_with_crowds_exceeds_base(self):
        generator = StockWorkloadGenerator(
            WorkloadSpec().scaled(300_000.0), master_seed=7)
        generator.generate()
        crowd = generator.crowds[0]
        mid = (crowd.start_ms + crowd.end_ms) / 2
        assert (generator.query_rate_at(mid)
                > generator.spec.base_query_rate_at(mid) * 1.5)


class TestBursts:
    def test_bursts_cluster_same_stock(self):
        spec = dataclasses.replace(WorkloadSpec().scaled(30_000.0),
                                   update_burst_mean=4.0,
                                   update_burst_window_ms=100.0)
        trace = StockWorkloadGenerator(spec, master_seed=5).generate()
        # Count updates followed within 100 ms by another on the same stock.
        last_seen: dict[str, float] = {}
        clustered = 0
        for u in trace.updates:
            prev = last_seen.get(u.item)
            if prev is not None and u.arrival_ms - prev <= 100.0:
                clustered += 1
            last_seen[u.item] = u.arrival_ms
        assert clustered / len(trace.updates) > 0.3


class TestStockUniverse:
    def test_ticker_symbols_bijective_base26(self):
        assert ticker_symbol(0) == "A"
        assert ticker_symbol(25) == "Z"
        assert ticker_symbol(26) == "AA"
        assert ticker_symbol(27) == "AB"
        assert ticker_symbol(701) == "ZZ"
        assert ticker_symbol(702) == "AAA"

    def test_ticker_negative_rejected(self):
        with pytest.raises(ValueError):
            ticker_symbol(-1)

    def test_universe_unique_symbols(self):
        universe = StockUniverse(500, RandomStream(0, "u"))
        assert len(set(universe.symbols)) == 500

    def test_rank_mappings_are_permutations(self):
        universe = StockUniverse(100, RandomStream(0, "u"),
                                 popularity_correlation=0.5)
        query_ranked = {universe.stock_for_query_rank(r)
                        for r in range(100)}
        update_ranked = {universe.stock_for_update_rank(r)
                         for r in range(100)}
        assert query_ranked == update_ranked == set(universe.symbols)

    def test_full_correlation_aligns_ranks(self):
        universe = StockUniverse(50, RandomStream(0, "u"),
                                 popularity_correlation=1.0)
        for rank in range(50):
            assert (universe.stock_for_query_rank(rank)
                    == universe.stock_for_update_rank(rank))

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            StockUniverse(10, RandomStream(0, "u"),
                          popularity_correlation=-0.5)


class TestSamplers:
    def test_poisson_mean(self):
        stream = RandomStream(0, "p")
        samples = [_poisson(stream, 5.0) for __ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.05)

    def test_poisson_zero_mean(self):
        assert _poisson(RandomStream(0, "p"), 0.0) == 0

    def test_poisson_large_mean_normal_approx(self):
        stream = RandomStream(0, "p")
        sample = _poisson(stream, 10_000.0)
        assert abs(sample - 10_000) < 500

    def test_geometric_mean(self):
        stream = RandomStream(0, "g")
        samples = [_geometric(stream, 1 / 2.5) for __ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(2.5, rel=0.07)
        assert min(samples) >= 1

    def test_geometric_p_one(self):
        assert _geometric(RandomStream(0, "g"), 1.0) == 1

    def test_update_exec_sampler_bounds_and_mean(self):
        spec = WorkloadSpec()
        stream = RandomStream(0, "e")
        samples = [spec.sample_update_exec(stream) for __ in range(5000)]
        assert all(1.0 <= s <= 5.0 for s in samples)
        assert (sum(samples) / len(samples)
                == pytest.approx(spec.update_exec_mean_ms, rel=0.03))
