"""Tests for :mod:`repro.telemetry` — tracing, metrics, exporters.

The golden test here is the span-lifecycle audit: on a real run, every
transaction that reached a terminal state must have emitted exactly one
``arrive`` instant and exactly one terminal instant, with the terminal
last in its chain.  The other pillars: ring-buffer eviction semantics,
Chrome-trace schema validity, the disabled path being a strict no-op,
and byte-identical simulation results with telemetry on or off.
"""

import dataclasses
import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.sim import Environment
from repro.telemetry import (CAT_SCHED, CAT_TXN, CATEGORIES, TXN_ARRIVE,
                             TXN_TERMINALS, MetricsRegistry, TelemetryConfig,
                             TelemetrySession, Tracer, chrome_trace_events,
                             summary_report, to_chrome_trace,
                             write_chrome_trace)
from repro.telemetry.hooks import KernelProbe
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

POLICIES = ("FIFO", "UH", "QH", "QUTS")


def small_trace(seed=11, duration=8_000.0, **overrides):
    spec = dataclasses.replace(WorkloadSpec().scaled(duration), **overrides)
    return StockWorkloadGenerator(spec, master_seed=seed).generate()


@pytest.fixture(scope="module")
def trace():
    return small_trace()


def run_traced(trace, policy="QUTS", **kwargs):
    result = run_simulation(make_scheduler(policy), trace,
                            QCFactory.balanced(), master_seed=1,
                            telemetry=TelemetryConfig(**kwargs))
    assert result.telemetry is not None
    return result


def _renumber_txn_ids(events):
    """Rewrite txn-id-bearing args to first-appearance ordinals.

    Transaction ids come from a process-global counter, so two otherwise
    identical runs in one process see different absolute ids.
    """
    mapping = {}

    def ordinal(value):
        if value not in mapping:
            mapping[value] = len(mapping)
        return mapping[value]

    out = []
    for event in events:
        event = json.loads(json.dumps(event))
        args = event.get("args")
        if isinstance(args, dict):
            for key in ("txn", "by", "id"):
                if key in args:
                    args[key] = ordinal(args[key])
        out.append(event)
    return out


# ----------------------------------------------------------------------
# The golden lifecycle audit
# ----------------------------------------------------------------------
class TestSpanLifecycleGolden:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_terminal_txn_has_one_arrive_one_terminal(self, trace,
                                                            policy):
        result = run_traced(trace, policy)
        chains: dict[int, list[str]] = {}
        for record in result.telemetry.tracer.instants():
            if record.category == CAT_TXN and record.txn_id >= 0:
                chains.setdefault(record.txn_id, []).append(record.name)

        terminal_chains = 0
        for txn_id, names in chains.items():
            arrivals = names.count(TXN_ARRIVE)
            terminals = [n for n in names if n in TXN_TERMINALS]
            assert arrivals == 1, (txn_id, names)
            assert names[0] == TXN_ARRIVE, (txn_id, names)
            assert len(terminals) <= 1, (txn_id, names)
            if terminals:
                terminal_chains += 1
                # The terminal is the chain's last lifecycle event.
                assert names[-1] == terminals[0], (txn_id, names)

        # Conservation: every submitted transaction reached a terminal.
        assert terminal_chains == len(trace.queries) + len(trace.updates)

    def test_lifecycle_counts_match_ledger(self, trace):
        result = run_traced(trace)
        counters = result.telemetry.registry.counter_values()
        ledger = result.counters
        assert counters.get("server/txn/commit", 0) == (
            ledger.get("queries_committed", 0)
            + ledger.get("updates_applied", 0))
        assert counters.get("server/txn/supersede", 0) == ledger.get(
            "updates_superseded", 0)
        assert counters.get("server/txn/expire", 0) == ledger.get(
            "queries_dropped_lifetime", 0)

    def test_cpu_spans_cover_committed_service_time(self, trace):
        result = run_traced(trace)
        busy = sum(s.dur for s in result.telemetry.tracer.spans()
                   if s.name in ("query", "update"))
        # CPU busy time is positive and bounded by the simulated horizon.
        assert 0.0 < busy <= result.duration


# ----------------------------------------------------------------------
# Determinism: byte-identical results on vs off, and the no-op path
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_results_identical_on_vs_off(self, trace, policy):
        off = run_simulation(make_scheduler(policy), trace,
                             QCFactory.balanced(), master_seed=1)
        on = run_traced(trace, policy)
        assert on.total_percent == off.total_percent
        assert on.qos_percent == off.qos_percent
        assert on.qod_percent == off.qod_percent
        assert on.mean_response_time == off.mean_response_time
        assert on.mean_staleness == off.mean_staleness
        assert on.counters == off.counters
        assert on.lock_stats == off.lock_stats
        if on.rho_series is not None:
            assert on.rho_series.times == off.rho_series.times
            assert on.rho_series.values == off.rho_series.values

    def test_disabled_config_is_noop(self, trace):
        result = run_simulation(make_scheduler("QUTS"), trace,
                                QCFactory.balanced(), master_seed=1,
                                telemetry=TelemetryConfig(enabled=False))
        assert result.telemetry is None

    def test_none_knob_leaves_no_probes(self, trace):
        scheduler = make_scheduler("QUTS")
        result = run_simulation(scheduler, trace, QCFactory.balanced(),
                                master_seed=1)
        assert result.telemetry is None
        assert scheduler.probe is None

    def test_from_knob_coercions(self):
        assert TelemetrySession.from_knob(None) is None
        assert TelemetrySession.from_knob(False) is None
        assert TelemetrySession.from_knob(
            TelemetryConfig(enabled=False)) is None
        session = TelemetrySession.from_knob(True)
        assert isinstance(session, TelemetrySession)
        assert TelemetrySession.from_knob(session) is session
        with pytest.raises(TypeError):
            TelemetrySession.from_knob("yes")  # type: ignore[arg-type]

    def test_tracer_from_disabled_config_is_none(self):
        assert Tracer.from_config(None) is None
        assert Tracer.from_config(TelemetryConfig(enabled=False)) is None

    def test_environment_observer_defaults_off(self):
        assert Environment().telemetry is None

    def test_cluster_run_shares_one_session_across_replicas(self, trace):
        from repro.cluster import HedgedRouter, run_cluster_simulation

        def run(telemetry):
            return run_cluster_simulation(
                2, lambda: make_scheduler("QUTS"), trace,
                QCFactory.balanced(), router=HedgedRouter(),
                master_seed=7, telemetry=telemetry)

        off = run(None)
        on = run(TelemetryConfig())
        assert off.telemetry is None
        assert on.telemetry is not None
        assert on.total_percent == off.total_percent
        assert sorted(on.counters.items()) == sorted(off.counters.items())
        scopes = {record.track.split("/")[0]
                  for record in on.telemetry.tracer.records()}
        assert {"replica0", "replica1"} <= scopes


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------
class TestRingBuffer:
    def test_eviction_overwrites_oldest(self):
        tracer = Tracer(buffer_size=4)
        for i in range(10):
            tracer.instant(float(i), CAT_TXN, "arrive", "server/lifecycle",
                           txn_id=i)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        kept = [r.txn_id for r in tracer.records()]
        assert kept == [6, 7, 8, 9]  # oldest-first, newest retained

    def test_no_drops_below_capacity(self):
        tracer = Tracer(buffer_size=8)
        for i in range(8):
            tracer.counter(float(i), CAT_SCHED, "rho", "server/sched", 0.5)
        assert tracer.dropped == 0
        assert [r.ts for r in tracer.records()] == [float(i)
                                                    for i in range(8)]

    def test_category_filter_drops_early(self):
        tracer = Tracer(categories=(CAT_SCHED,), buffer_size=8)
        tracer.instant(0.0, CAT_TXN, "arrive", "server/lifecycle")
        tracer.instant(0.0, CAT_SCHED, "quantum_draw", "server/sched")
        assert tracer.emitted == 1
        assert [r.category for r in tracer.records()] == [CAT_SCHED]
        assert tracer.enabled_for(CAT_SCHED)
        assert not tracer.enabled_for(CAT_TXN)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            Tracer(buffer_size=0)
        with pytest.raises(ValueError):
            Tracer(categories=("nope",))
        with pytest.raises(ValueError):
            TelemetryConfig(buffer_size=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(categories=("nope",))

    def test_small_buffer_run_reports_drops(self, trace):
        result = run_traced(trace, buffer_size=256)
        tracer = result.telemetry.tracer
        assert len(tracer) == 256
        assert tracer.dropped == tracer.emitted - 256 > 0
        times = [r.ts for r in tracer.records()]
        assert times == sorted(times)  # oldest-first after unwrapping


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_schema(self, trace):
        result = run_traced(trace)
        payload = to_chrome_trace(result.telemetry.tracer,
                                  metadata={"policy": "QUTS"})
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["policy"] == "QUTS"
        assert payload["otherData"]["dropped"] == 0
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i", "C"}
        assert {"X", "i", "C", "M"} <= phases  # all record kinds present
        for event in events:
            assert {"ph", "pid", "tid", "name"} <= event.keys()
            if event["ph"] == "M":
                assert event["name"] in ("process_name", "thread_name")
                continue
            assert event["ts"] >= 0.0
            assert isinstance(event["cat"], str)
            if event["ph"] == "X":
                assert event["dur"] > 0.0
            elif event["ph"] == "C":
                assert "value" in event["args"]
            elif event["ph"] == "i":
                assert event["s"] == "t"

    def test_tracks_become_named_processes_and_threads(self, trace):
        result = run_traced(trace)
        events = chrome_trace_events(result.telemetry.tracer)
        processes = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "server" in processes
        assert {"lifecycle", "cpu", "sched", "queues"} <= threads

    def test_timestamps_scaled_to_microseconds(self):
        tracer = Tracer(buffer_size=4)
        tracer.span(2.0, 1.5, CAT_TXN, "query", "server/cpu", txn_id=7)
        (event,) = [e for e in chrome_trace_events(tracer)
                    if e["ph"] == "X"]
        assert event["ts"] == 2_000.0
        assert event["dur"] == 1_500.0

    def test_write_chrome_trace_is_valid_json(self, trace, tmp_path):
        result = run_traced(trace)
        target = write_chrome_trace(result.telemetry.tracer,
                                    tmp_path / "trace.json")
        loaded = json.loads(target.read_text())
        assert loaded["traceEvents"]
        assert loaded["otherData"]["clock"] == "simulated-ms"

    def test_export_is_deterministic(self, trace):
        # Transaction ids are process-global (monotone across runs), so
        # compare with ids renumbered by order of first appearance.
        a = run_traced(trace)
        b = run_traced(trace)
        assert (_renumber_txn_ids(chrome_trace_events(a.telemetry.tracer))
                == _renumber_txn_ids(chrome_trace_events(
                    b.telemetry.tracer)))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_and_gauges_lazy(self):
        registry = MetricsRegistry()
        registry.counter("a").increment(3)
        registry.gauge("g").record(0.0, 1.0)
        assert registry.counter_values() == {"a": 3}
        assert list(registry.gauges()) == ["g"]

    def test_scoped_prefixes(self):
        registry = MetricsRegistry()
        scoped = registry.scoped("replica1")
        scoped.counter("txn/commit").increment()
        assert registry.counter_values() == {"replica1/txn/commit": 1}

    def test_gauges_bounded(self):
        registry = MetricsRegistry(series_points=16)
        gauge = registry.gauge("depth")
        for t in range(10_000):
            gauge.record(float(t), float(t))
        assert len(gauge) <= 16

    def test_histogram_buckets_and_merge(self):
        registry = MetricsRegistry()
        h = registry.histogram("rt", boundaries=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert sum(h.counts) == 3
        other = MetricsRegistry()
        other.histogram("rt", boundaries=(1.0, 10.0)).observe(2.0)
        registry.merge(other)
        assert sum(registry.histograms()["rt"].counts) == 4

    def test_merge_adds_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").increment(1)
        b.counter("x").increment(2)
        b.counter("y").increment(5)
        a.merge(b)
        assert a.counter_values() == {"x": 3, "y": 5}

    def test_kernel_probe_counts_flushed(self, trace):
        result = run_traced(trace)
        counters = result.telemetry.registry.counter_values()
        kernel = {k: v for k, v in counters.items()
                  if k.startswith("kernel/events_")}
        assert kernel  # the instrumented loop saw events
        assert kernel.get("kernel/events_timeout", 0) > 0

    def test_kernel_probe_not_attached_without_category(self, trace):
        result = run_traced(trace, categories=("txn",))
        counters = result.telemetry.registry.counter_values()
        assert not any(k.startswith("kernel/") for k in counters)


# ----------------------------------------------------------------------
# Summary + CLI
# ----------------------------------------------------------------------
class TestSummaryAndCli:
    def test_summary_report_mentions_counts(self, trace):
        result = run_traced(trace)
        text = summary_report(result.telemetry.tracer,
                              result.telemetry.registry)
        assert "records retained" in text
        assert "txn" in text
        assert "busy time" in text

    def test_trace_cli_writes_perfetto_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli_main(["trace", "figures", "--fig", "5", "--scale",
                         "smoke", "--out", str(out), "--summary"]) == 0
        printed = capsys.readouterr().out
        assert "wrote" in printed
        assert "telemetry summary" in printed
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert payload["otherData"]["fig"] == 5

    def test_trace_cli_rejects_unknown_category(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["trace", "run", "--categories", "bogus",
                      "--out", str(tmp_path / "t.json")])

    def test_all_categories_exported(self):
        assert CATEGORIES == {"txn", "sched", "cluster", "kernel",
                              "shard"}

    def test_session_rejects_disabled_config(self):
        with pytest.raises(ValueError):
            TelemetrySession(TelemetryConfig(enabled=False))

    def test_kernel_probe_is_event_observer(self):
        probe = KernelProbe(MetricsRegistry().scoped("kernel"))
        env = Environment()
        env.telemetry = probe
        env.process(_tick(env), name="tick")
        env.run(until=10.0)
        probe.flush()
        assert probe.counts.get("timeout", 0) >= 1


def _tick(env):
    yield env.timeout(1.0)


# ----------------------------------------------------------------------
# Per-category stride sampling (TelemetryConfig(sample_rate=...))
# ----------------------------------------------------------------------
class TestSampling:
    def test_config_normalises_dict_to_sorted_pairs(self):
        config = TelemetryConfig(sample_rate={CAT_TXN: 0.25,
                                              CAT_SCHED: 0.5})
        assert config.sample_rate == ((CAT_SCHED, 0.5), (CAT_TXN, 0.25))

    def test_config_rejects_bad_rates_and_categories(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_rate={"nope": 0.5})
        with pytest.raises(ValueError):
            TelemetryConfig(sample_rate={CAT_TXN: 0.0})
        with pytest.raises(ValueError):
            TelemetryConfig(sample_rate={CAT_TXN: 1.5})

    def test_stride_keeps_first_of_every_n(self):
        tracer = Tracer(sample_rate=((CAT_TXN, 0.25),))
        for i in range(8):
            tracer.instant(float(i), CAT_TXN, "arrive", "t")
        assert len(tracer.records()) == 2  # records 0 and 4
        assert tracer.sampled == 6
        assert [r.ts for r in tracer.records()] == [0.0, 4.0]

    def test_unsampled_categories_keep_everything(self):
        tracer = Tracer(sample_rate=((CAT_TXN, 0.1),))
        for i in range(5):
            tracer.instant(float(i), CAT_SCHED, "tick", "t")
        assert len(tracer.records()) == 5
        assert tracer.sampled == 0

    def test_rate_one_is_a_noop(self):
        tracer = Tracer(sample_rate=((CAT_TXN, 1.0),))
        for i in range(5):
            tracer.instant(float(i), CAT_TXN, "arrive", "t")
        assert len(tracer.records()) == 5
        assert tracer.sampled == 0

    def test_sampling_counts_per_category_not_globally(self):
        tracer = Tracer(sample_rate=((CAT_TXN, 0.5), (CAT_SCHED, 0.5)))
        for i in range(4):
            tracer.instant(float(i), CAT_TXN, "arrive", "t")
            tracer.instant(float(i), CAT_SCHED, "tick", "t")
        kept = tracer.records()
        assert len([r for r in kept if r.category == CAT_TXN]) == 2
        assert len([r for r in kept if r.category == CAT_SCHED]) == 2

    def test_sampled_run_results_identical_to_unsampled(self, trace):
        full = run_traced(trace)
        sampled = run_traced(trace, sample_rate={CAT_TXN: 0.1,
                                                 CAT_SCHED: 0.1})
        assert sampled.total_percent == full.total_percent
        assert sampled.qos_percent == full.qos_percent
        assert sampled.qod_percent == full.qod_percent
        assert sampled.mean_response_time == full.mean_response_time
        assert sampled.counters == full.counters

    def test_sampled_run_retains_fewer_records(self, trace):
        full = run_traced(trace)
        sampled = run_traced(trace, sample_rate={CAT_TXN: 0.1})
        full_n = len(full.telemetry.tracer.records())
        sampled_n = len(sampled.telemetry.tracer.records())
        assert 0 < sampled_n < full_n
        assert sampled.telemetry.tracer.sampled > 0

    def test_sampling_is_deterministic(self, trace):
        runs = [run_traced(trace, sample_rate={CAT_TXN: 0.2})
                for __ in range(2)]
        counts = [len(r.telemetry.tracer.records()) for r in runs]
        assert counts[0] == counts[1]
        assert runs[0].telemetry.tracer.sampled == \
            runs[1].telemetry.tracer.sampled
