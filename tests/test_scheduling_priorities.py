"""Unit tests for low-level priority policies."""

import pytest

from repro.db.transactions import Query, Update
from repro.qc.contracts import QualityContract
from repro.scheduling.priorities import (PRIORITY_POLICIES, EDFPriority,
                                         FCFSPriority, ProfitRatePriority,
                                         VRDPriority, make_priority)


def query(at=0.0, qosmax=10.0, qodmax=0.0, rtmax=50.0, exec_time=5.0):
    return Query(arrival_time=at, exec_time=exec_time, items=("A",),
                 qc=QualityContract.step(qosmax, rtmax, qodmax, 1.0))


def update(at=0.0):
    return Update(arrival_time=at, exec_time=1.0, item="A")


class TestFCFS:
    def test_orders_by_arrival(self):
        policy = FCFSPriority()
        assert policy.key(update(at=1.0)) < policy.key(update(at=2.0))

    def test_applies_to_queries_too(self):
        policy = FCFSPriority()
        assert policy.key(query(at=1.0)) < policy.key(query(at=2.0))


class TestVRD:
    def test_higher_value_per_deadline_first(self):
        """VRD = (qosmax + qodmax) / rtmax; bigger ratio runs first."""
        policy = VRDPriority()
        strong = query(qosmax=50.0, rtmax=50.0)   # ratio 1.0
        weak = query(qosmax=10.0, rtmax=100.0)    # ratio 0.1
        assert policy.key(strong) < policy.key(weak)

    def test_uses_total_value(self):
        policy = VRDPriority()
        qod_rich = query(qosmax=1.0, qodmax=50.0, rtmax=50.0)
        qos_poor = query(qosmax=10.0, qodmax=0.0, rtmax=50.0)
        assert policy.key(qod_rich) < policy.key(qos_poor)

    def test_no_deadline_ranks_behind_all_deadline_carrying(self):
        """Regression: a no-deadline query (rtmax = inf because qosmax = 0)
        used to be keyed ``-total_max``, which compares in different units
        against the ``-(total_max/rtmax)`` ratio keys and jumped *ahead*
        of an equal-value query whose rtmax > 1."""
        policy = VRDPriority()
        no_deadline = query(qosmax=0.0, qodmax=50.0, rtmax=50.0)
        equal_value = query(qosmax=25.0, qodmax=25.0, rtmax=50.0)
        cheap_deadline = query(qosmax=0.01, qodmax=0.0, rtmax=10_000.0)
        assert policy.key(equal_value) < policy.key(no_deadline)
        # ... behind even a nearly worthless deadline-carrying query.
        assert policy.key(cheap_deadline) < policy.key(no_deadline)

    def test_no_deadline_queries_order_by_value(self):
        policy = VRDPriority()
        rich = query(qosmax=0.0, qodmax=50.0)
        poor = query(qosmax=0.0, qodmax=5.0)
        assert policy.key(rich) < policy.key(poor)

    def test_updates_fall_back_to_fcfs(self):
        policy = VRDPriority()
        assert policy.key(update(at=1.0)) < policy.key(update(at=2.0))

    def test_free_contract_ranks_last(self):
        policy = VRDPriority()
        free = Query(0.0, 5.0, ("A",), QualityContract.free())
        paid = query(qosmax=1.0, rtmax=100.0)
        assert policy.key(paid) < policy.key(free)


class TestEDF:
    def test_earliest_absolute_deadline_first(self):
        policy = EDFPriority()
        early = query(at=0.0, rtmax=50.0)    # deadline 50
        late = query(at=20.0, rtmax=100.0)   # deadline 120
        assert policy.key(early) < policy.key(late)

    def test_arrival_breaks_equal_relative_deadlines(self):
        policy = EDFPriority()
        a = query(at=0.0, rtmax=50.0)
        b = query(at=10.0, rtmax=50.0)
        assert policy.key(a) < policy.key(b)


class TestProfitRate:
    def test_profit_per_service_time(self):
        policy = ProfitRatePriority()
        dense = query(qosmax=50.0, exec_time=5.0)   # 10/ms
        sparse = query(qosmax=50.0, exec_time=9.0)  # 5.6/ms
        assert policy.key(dense) < policy.key(sparse)


class TestRegistry:
    def test_all_registered_policies_instantiate(self):
        for name in PRIORITY_POLICIES:
            assert make_priority(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown priority"):
            make_priority("random")
