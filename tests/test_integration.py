"""Cross-policy integration tests: system-level invariants on real runs.

Each test replays a scaled trace end-to-end under one or more policies and
asserts an invariant the paper's system model guarantees:

* UH commits queries with zero staleness (§3.2);
* profit never exceeds the submitted maxima;
* every transaction is accounted for exactly once;
* QUTS's ρ stays in [0.5, 1] (Eq. 4 note);
* schedulers are work-conserving (no idle CPU while work is queued, which
  shows up as all work completing on a lightly loaded trace).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler, make_scheduler
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec


def small_trace(seed=11, duration=20_000.0, **overrides):
    spec = dataclasses.replace(WorkloadSpec().scaled(duration), **overrides)
    return StockWorkloadGenerator(spec, master_seed=seed).generate()


@pytest.fixture(scope="module")
def trace():
    return small_trace()


POLICIES = ("FIFO", "UH", "QH", "QUTS")


class TestInvariantsAcrossPolicies:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_profit_bounded_by_maxima(self, trace, policy):
        result = run_simulation(make_scheduler(policy), trace,
                                QCFactory.balanced(), master_seed=1)
        ledger = result.ledger
        assert 0.0 <= ledger.qos_gained <= ledger.qos_max_submitted + 1e-9
        assert 0.0 <= ledger.qod_gained <= ledger.qod_max_submitted + 1e-9
        assert 0.0 <= result.total_percent <= 1.0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_transaction_conservation(self, trace, policy):
        result = run_simulation(make_scheduler(policy), trace,
                                QCFactory.balanced(), master_seed=1)
        c = result.counters
        queries = (c.get("queries_committed", 0)
                   + c.get("queries_dropped_lifetime", 0)
                   + c.get("queries_unfinished", 0))
        updates = (c.get("updates_applied", 0)
                   + c.get("updates_superseded", 0)
                   + c.get("updates_unfinished", 0))
        assert queries == len(trace.queries)
        assert updates == len(trace.updates)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_response_times_at_least_service_time(self, trace, policy):
        result = run_simulation(make_scheduler(policy), trace,
                                QCFactory.balanced(), master_seed=1)
        # Mean response time can never beat the minimum service time.
        assert result.mean_response_time >= 5.0


class TestUHGuarantee:
    def test_uh_zero_staleness(self, trace):
        """§3.2: 'UH guarantees zero data staleness'."""
        result = run_simulation(make_scheduler("UH"), trace,
                                QCFactory.balanced(), master_seed=1)
        assert result.mean_staleness == 0.0
        assert result.ledger.staleness.maximum <= 0.0

    def test_uh_worst_response_time(self, trace):
        results = {policy: run_simulation(make_scheduler(policy), trace,
                                          QCFactory.balanced(),
                                          master_seed=1)
                   for policy in POLICIES}
        assert results["UH"].mean_response_time == max(
            r.mean_response_time for r in results.values())

    def test_qh_best_response_time(self, trace):
        results = {policy: run_simulation(make_scheduler(policy), trace,
                                          QCFactory.balanced(),
                                          master_seed=1)
                   for policy in POLICIES}
        assert results["QH"].mean_response_time == min(
            r.mean_response_time for r in results.values())


class TestQUTSProperties:
    def test_rho_stays_in_model_range(self, trace):
        scheduler = QUTSScheduler()
        run_simulation(scheduler, trace, QCFactory.balanced(),
                       master_seed=1)
        assert scheduler.rho_series is not None and len(scheduler.rho_series)
        for __, rho in scheduler.rho_series.items():
            assert 0.5 <= rho <= 1.0 + 1e-9

    def test_quts_beats_or_matches_worst_baseline(self, trace):
        results = {policy: run_simulation(make_scheduler(policy), trace,
                                          QCFactory.balanced(),
                                          master_seed=1)
                   for policy in POLICIES}
        worst = min(r.total_percent for n, r in results.items()
                    if n != "QUTS")
        assert results["QUTS"].total_percent >= worst

    def test_quts_near_best_on_both_dimensions(self, trace):
        """The Figure 6 claim: QUTS takes the best profit dimension of the
        fixed policies (within a small tolerance)."""
        results = {policy: run_simulation(make_scheduler(policy), trace,
                                          QCFactory.balanced(),
                                          master_seed=1)
                   for policy in POLICIES}
        quts = results["QUTS"]
        assert quts.qos_percent >= results["UH"].qos_percent - 0.02
        assert quts.qod_percent >= results["QH"].qod_percent - 0.02


class TestLightLoadSanity:
    def test_everything_completes_under_light_load(self):
        """At a fraction of the paper's rates every policy keeps up and no
        profit is left on the table by queueing."""
        trace = small_trace(duration=10_000.0,
                            query_rate_per_s=5.0, update_rate_per_s=20.0,
                            crowds_per_5min=0.0)
        for policy in POLICIES:
            result = run_simulation(make_scheduler(policy), trace,
                                    QCFactory.balanced(), master_seed=1)
            c = result.counters
            assert c.get("queries_unfinished", 0) == 0, policy
            assert c.get("queries_dropped_lifetime", 0) == 0, policy
            assert result.total_percent > 0.9, policy


class TestSeedRobustness:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_invariants_hold_for_any_seed(self, seed):
        trace = small_trace(seed=seed, duration=5_000.0)
        result = run_simulation(make_scheduler("QUTS"), trace,
                                QCFactory.balanced(), master_seed=seed)
        c = result.counters
        queries = (c.get("queries_committed", 0)
                   + c.get("queries_dropped_lifetime", 0)
                   + c.get("queries_unfinished", 0))
        assert queries == len(trace.queries)
        assert 0.0 <= result.total_percent <= 1.0
