"""Tests for the sharded portal: planner, router, migration, accounting.

Organised bottom-up: the staleness metric and router in isolation, the
scatter-gather planner against hand-driven sub-query lifecycles, then
whole :class:`~repro.shard.ShardedPortal` runs (including a forced
migration that exercises the freeze → drain → copy → cutover → replay
protocol under an armed invariant monitor).
"""

import pytest

from repro.cluster import QCAwareRouter, run_cluster_simulation
from repro.cluster.routers import Router
from repro.db.database import Database
from repro.db.transactions import Query, TxnStatus, Update
from repro.qc.contracts import QualityContract
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.shard import (HashRing, RebalanceConfig, ShardedPortal,
                         ShardPlanner, StalenessAwareRouter,
                         UpdateRateTracker)
from repro.sim import Environment
from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.sim.rng import StreamRegistry
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec
from repro.workload.traces import Trace


def step_query(items=("A",), qosmax=10.0, qodmax=10.0, at=0.0,
               exec_ms=6.0):
    return Query(at, exec_ms, items,
                 QualityContract.step(qosmax, 50.0, qodmax, 1.0))


def small_trace(seed=7, duration_ms=8_000.0, n_stocks=64):
    spec = WorkloadSpec().scaled(duration_ms)
    import dataclasses
    spec = dataclasses.replace(spec, n_stocks=n_stocks)
    return StockWorkloadGenerator(spec, master_seed=seed).generate()


def make_portal(env, n_shards, keys, seed=1, **kwargs):
    return ShardedPortal(env, n_shards, lambda: make_scheduler("QUTS"),
                         StreamRegistry(seed), keys=keys, **kwargs)


# ----------------------------------------------------------------------
# The shared staleness metric (satellite: one accessor, two routers)
# ----------------------------------------------------------------------
class TestStalenessAccessor:
    def test_fresh_and_unknown_keys_have_zero_age(self):
        db = Database()
        db.item("A")
        assert db.staleness_age("A", now=100.0) == 0.0
        assert db.staleness_age("missing", now=100.0) == 0.0

    def test_age_tracks_pending_update(self):
        db = Database()
        update = Update(10.0, 2.0, "A", value=1.0)
        db.register_update(update, now=10.0)
        assert db.staleness_age("A", now=10.0) == 0.0
        assert db.staleness_age("A", now=35.0) == 25.0
        db.apply_update(update, now=35.0)
        assert db.staleness_age("A", now=99.0) == 0.0

    def test_max_staleness_age(self):
        db = Database()
        db.register_update(Update(0.0, 2.0, "A", value=1.0), now=0.0)
        db.register_update(Update(5.0, 2.0, "B", value=1.0), now=5.0)
        assert db.max_staleness_age(now=20.0) == 20.0


class TestUpdateRateTracker:
    def test_single_observation_has_no_rate(self):
        tracker = UpdateRateTracker()
        tracker.observe("A", 100.0)
        assert tracker.rate("A") == 0.0
        assert tracker.rate("never") == 0.0

    def test_steady_stream_converges_to_rate(self):
        tracker = UpdateRateTracker(alpha=0.5)
        for k in range(20):
            tracker.observe("A", k * 10.0)
        assert tracker.rate("A") == pytest.approx(0.1)

    def test_hotness_is_max_over_keys(self):
        tracker = UpdateRateTracker(alpha=1.0)
        for k in range(3):
            tracker.observe("hot", k * 2.0)
            tracker.observe("cold", k * 200.0)
        assert tracker.hotness(["hot", "cold"]) == tracker.rate("hot")
        assert tracker.hotness([]) == 0.0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            UpdateRateTracker(alpha=0.0)


class _FakeDatabase:
    def __init__(self, ages):
        self._ages = ages

    def staleness_age(self, key, now):
        return self._ages.get(key, 0.0)


class _FakeEnv:
    now = 1_000.0


class _FakeServer:
    def __init__(self, ages):
        self.database = _FakeDatabase(ages)
        self.env = _FakeEnv()


class _FakeReplica:
    up = True

    def __init__(self, pending_q=0, pending_u=0, ages=None):
        self._q, self._u = pending_q, pending_u
        self.server = _FakeServer(ages or {})

    def pending_queries(self):
        return self._q

    def pending_updates(self):
        return self._u


class TestStalenessAwareRouter:
    def test_qod_heavy_prefers_fresh_replica(self):
        router = StalenessAwareRouter()
        stale = _FakeReplica(pending_q=0, ages={"A": 500.0})
        fresh = _FakeReplica(pending_q=9, ages={"A": 0.0})
        query = step_query(qosmax=1.0, qodmax=99.0)
        assert router.choose(query, [stale, fresh]) == 1

    def test_qos_heavy_prefers_short_queue(self):
        router = StalenessAwareRouter()
        stale = _FakeReplica(pending_q=0, ages={"A": 500.0})
        fresh = _FakeReplica(pending_q=9, ages={"A": 0.0})
        query = step_query(qosmax=99.0, qodmax=1.0)
        assert router.choose(query, [stale, fresh]) == 0

    def test_backlog_weighs_against_replica(self):
        router = StalenessAwareRouter(backlog_ms_per_update=10.0)
        lagging = _FakeReplica(pending_u=50)
        caught_up = _FakeReplica(pending_u=0)
        query = step_query(qosmax=0.0, qodmax=10.0)
        assert router.choose(query, [lagging, caught_up]) == 1

    def test_hot_keys_amplify_backlog(self):
        router = StalenessAwareRouter(hotness_scale=100.0)
        for k in range(10):
            router.observe_update("hot", k * 1.0)
        hot = router.expected_staleness_ms(_FakeReplica(pending_u=5),
                                           ["hot"], now=1_000.0)
        cold = router.expected_staleness_ms(_FakeReplica(pending_u=5),
                                            ["cold"], now=1_000.0)
        assert hot > cold

    def test_ties_break_by_index(self):
        router = StalenessAwareRouter()
        replicas = [_FakeReplica(), _FakeReplica()]
        assert router.choose(step_query(), replicas) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StalenessAwareRouter(backlog_ms_per_update=-1.0)
        with pytest.raises(ValueError):
            StalenessAwareRouter(hotness_scale=-0.1)


class _LegacyQCAware(Router):
    """The pre-refactor QCAwareRouter freshness rule, verbatim: raw
    ``pending_updates()`` counts, ties by index."""

    name = "legacy-qc-aware"

    def __init__(self, qod_threshold=0.5):
        self.qod_threshold = qod_threshold

    def choose(self, query, replicas):
        healthy = self.healthy_indices(replicas)
        total = query.qc.total_max
        qod_share = query.qc.qod_max / total if total > 0 else 0.0
        if qod_share >= self.qod_threshold:
            return min(healthy,
                       key=lambda i: (replicas[i].pending_updates(), i))
        return min(healthy,
                   key=lambda i: (replicas[i].pending_queries(), i))


class TestQCAwareRegression:
    """Satellite check: rebasing QCAwareRouter onto the shared
    ``update_backlog`` metric changed no routing decision."""

    def test_identical_decisions_on_fakes(self):
        new = QCAwareRouter()
        old = _LegacyQCAware()
        replicas = [_FakeReplica(pending_q=q, pending_u=u)
                    for q, u in ((0, 9), (9, 1), (3, 3), (1, 1))]
        for qosmax, qodmax in ((99.0, 1.0), (1.0, 99.0), (5.0, 5.0)):
            query = step_query(qosmax=qosmax, qodmax=qodmax)
            assert (new.choose(query, replicas)
                    == old.choose(query, replicas))

    def test_identical_cluster_results(self):
        trace = small_trace()
        results = [
            run_cluster_simulation(3, lambda: make_scheduler("QUTS"),
                                   trace, QCFactory.balanced(),
                                   router=router, master_seed=5)
            for router in (QCAwareRouter(), _LegacyQCAware())]
        assert (results[0].total_percent == results[1].total_percent)
        assert results[0].counters == results[1].counters
        assert results[0].routed_counts == results[1].routed_counts


# ----------------------------------------------------------------------
# The scatter-gather planner
# ----------------------------------------------------------------------
class TestShardPlanner:
    def make_planner(self):
        env = Environment()
        return env, ShardPlanner(env)

    def test_split_groups_by_owner(self):
        env, planner = self.make_planner()
        ring = HashRing(4, seed=3)
        query = step_query(items=("A", "B", "C"))
        owners = planner.split(query, ring.owner)
        assert sorted(k for ks in owners.values() for k in ks) \
            == ["A", "B", "C"]
        for shard, keys in owners.items():
            assert all(ring.owner(k) == shard for k in keys)

    def test_fan_out_scales_contracts_and_demand(self):
        env, planner = self.make_planner()
        query = step_query(items=("A", "B", "C"), qosmax=9.0, qodmax=3.0,
                           exec_ms=6.0)
        planned = planner.fan_out(query, {0: ["A", "B"], 1: ["C"]})
        assert [shard for shard, _ in planned] == [0, 1]
        big, small = planned[0][1], planned[1][1]
        assert big.exec_time == pytest.approx(4.0)
        assert small.exec_time == pytest.approx(2.0)
        assert big.qc.total_max == pytest.approx(8.0)
        assert small.qc.total_max == pytest.approx(4.0)
        assert big.shadow_priced and small.shadow_priced
        # the parent's full contract is priced exactly once, here:
        assert planner.ledger.total_max == pytest.approx(12.0)

    def test_all_subs_commit_parent_commits(self):
        env, planner = self.make_planner()
        query = step_query(items=("A", "B"), qosmax=10.0, qodmax=10.0)
        planned = planner.fan_out(query, {0: ["A"], 1: ["B"]})
        env._now = 5.0
        for _shard, sub in planned:
            sub.finish_time = env.now
            sub.staleness = 0.0
            sub.status = TxnStatus.COMMITTED
        assert query.status is TxnStatus.COMMITTED
        assert not query.degraded
        assert query.total_profit == pytest.approx(20.0)
        assert planner.fanouts_resolved == 1
        assert not planner.open_fanouts

    def test_partial_failure_degrades_commit(self):
        env, planner = self.make_planner()
        query = step_query(items=("A", "B"), qosmax=10.0, qodmax=10.0)
        planned = planner.fan_out(query, {0: ["A"], 1: ["B"]})
        env._now = 5.0
        (_s0, ok), (_s1, dead) = planned
        ok.finish_time = env.now
        ok.staleness = 0.0
        ok.status = TxnStatus.COMMITTED
        dead.status = TxnStatus.LOST_CRASH
        assert query.status is TxnStatus.COMMITTED
        assert query.degraded
        assert query.qod_profit == 0.0  # freshness half forfeited
        assert query.qos_profit == pytest.approx(10.0)

    def test_staleness_aggregates_max_over_committed(self):
        env, planner = self.make_planner()
        query = step_query(items=("A", "B"))
        planned = planner.fan_out(query, {0: ["A"], 1: ["B"]})
        env._now = 4.0
        for age, (_shard, sub) in zip((3.0, 11.0), planned):
            sub.finish_time = env.now
            sub.staleness = age
            sub.status = TxnStatus.COMMITTED
        assert query.staleness == 11.0

    def test_total_failure_takes_dominant_status(self):
        env, planner = self.make_planner()
        query = step_query(items=("A", "B"))
        planned = planner.fan_out(query, {0: ["A"], 1: ["B"]})
        (_s0, one), (_s1, two) = planned
        one.status = TxnStatus.DROPPED_LIFETIME
        two.status = TxnStatus.LOST_CRASH
        assert query.status is TxnStatus.LOST_CRASH
        assert planner.ledger.total_gained == 0.0

    def test_all_unfinished_parent_unfinished(self):
        env, planner = self.make_planner()
        query = step_query(items=("A", "B"))
        for _shard, sub in planner.fan_out(query, {0: ["A"], 1: ["B"]}):
            sub.status = TxnStatus.UNFINISHED
        assert query.status is TxnStatus.UNFINISHED

    def test_monitor_sees_parent_and_subs(self):
        env = Environment()
        monitor = InvariantMonitor(lambda: env.now)
        planner = ShardPlanner(env, monitor=monitor)
        query = step_query(items=("A", "B"))
        planned = planner.fan_out(query, {0: ["A"], 1: ["B"]})
        # Subs and parent are all open; commits must balance them out.
        for _shard, sub in planned:
            sub.finish_time = 1.0
            sub.staleness = 0.0
            sub.qos_profit = sub.qod_profit = 0.0
            monitor.record("query_committed", txn_id=sub.txn_id,
                           profit=0.0)
            sub.status = TxnStatus.COMMITTED
        monitor.verify_complete(planner.ledger.total_gained)


# ----------------------------------------------------------------------
# The sharded portal end to end
# ----------------------------------------------------------------------
class TestShardedPortal:
    def test_rejects_bad_shapes(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_portal(env, 0, ["A"])
        with pytest.raises(ValueError):
            make_portal(env, 1, ["A"], base_weight=0)

    def test_single_stock_query_goes_to_owner(self):
        env = Environment()
        keys = [f"S{i}" for i in range(32)]
        portal = make_portal(env, 4, keys)
        query = step_query(items=(keys[0],))
        portal.submit_query(query)
        owner = portal.ring.owner(keys[0])
        assert portal.query_counts[owner] == 1
        assert sum(portal.query_counts) == 1
        env.run(until=5_000.0)
        portal.finalize()
        assert query.status is TxnStatus.COMMITTED

    def test_update_goes_only_to_owner(self):
        env = Environment()
        keys = [f"S{i}" for i in range(32)]
        portal = make_portal(env, 4, keys)
        portal.route_update(0.0, 2.0, keys[3], 7.0)
        owner = portal.ring.owner(keys[3])
        assert portal.update_counts[owner] == 1
        assert sum(portal.update_counts) == 1
        env.run(until=1_000.0)
        value = (portal.shards[owner].replicas[0]
                 .server.database.read(keys[3]))
        assert value == 7.0

    def test_fanout_commits_cross_shard_query(self):
        env = Environment()
        keys = [f"S{i}" for i in range(64)]
        portal = make_portal(env, 4, keys)
        # Find two keys with different owners.
        first = keys[0]
        other = next(k for k in keys
                     if portal.ring.owner(k) != portal.ring.owner(first))
        query = step_query(items=(first, other))
        portal.submit_query(query)
        env.run(until=5_000.0)
        portal.finalize()
        assert query.status is TxnStatus.COMMITTED
        assert not query.degraded
        assert query.total_profit > 0.0
        assert portal.planner.fanouts_resolved == 1
        assert portal.merged_counters()["queries_fanned_out"] == 1

    def test_forced_migration_freezes_and_replays_updates(self):
        """Drive a migration by hand and interleave updates for the
        moved keys: they must freeze, then replay on the destination at
        cutover, under an armed monitor (buffered == replayed)."""
        env = Environment()
        monitor = InvariantMonitor(lambda: env.now)
        keys = [f"S{i}" for i in range(128)]
        config = RebalanceConfig(drain_poll_ms=5.0,
                                 drain_timeout_ms=50.0)
        portal = make_portal(env, 2, keys, monitor=monitor,
                             base_weight=4, rebalance=config)
        portal.rebalances += 1  # mirror the controller's bookkeeping
        portal._migration_active = True
        successor = portal.ring.with_weight(0, 3)
        moved = portal.ring.moved_keys(successor, portal.keys)
        assert moved
        moved_key = sorted(moved)[0]
        # Queue a pending update on the source so draining has work.
        portal.route_update(0.0, 2.0, moved_key, 1.0)
        env.process(portal._migration(successor, moved))
        env.run(until=2.0)  # migration started: keys are frozen
        assert moved_key in portal._migrating
        portal.route_update(env.now, 2.0, moved_key, 42.0)  # frozen
        assert portal.counters.value("updates_frozen") == 1
        env.run(until=5_000.0)
        assert not portal._migrating
        assert not portal._migration_active
        assert portal.ring.weights[0] == 3
        assert portal.keys_migrated == len(moved)
        # The frozen update replayed on the new owner.
        dest = successor.owner(moved_key)
        assert dest == moved[moved_key][1]
        value = (portal.shards[dest].replicas[0]
                 .server.database.read(moved_key))
        assert value == 42.0

    def test_cutover_invariant_catches_lost_updates(self):
        env = Environment()
        monitor = InvariantMonitor(lambda: env.now)
        with pytest.raises(InvariantViolation):
            monitor.record("shard_cutover", source=0, dest=1,
                           buffered=3, replayed=2)

    def test_rebalance_controller_sheds_hot_shard_weight(self):
        """A update-hammered key makes its owner hot; the controller
        must shed that shard's ring weight."""
        env = Environment()
        keys = [f"S{i}" for i in range(64)]
        config = RebalanceConfig(interval_ms=500.0, skew_threshold=1.2,
                                 drain_poll_ms=5.0,
                                 drain_timeout_ms=100.0)
        portal = make_portal(env, 2, keys, rebalance=config)
        hot_key = keys[0]
        hot_shard = portal.ring.owner(hot_key)
        start_weight = portal.ring.weights[hot_shard]

        def hammer(env):
            while env.now < 3_000.0:
                portal.route_update(env.now, 1.0, hot_key, env.now)
                yield env.timeout(4.0)

        env.process(hammer(env))
        env.run(until=4_000.0)
        portal.finalize()
        assert portal.rebalances >= 1
        assert portal.ring.weights[hot_shard] < start_weight

    def test_one_shard_matches_cluster_run(self):
        """A 1-shard sharded run is a replicated portal plus a ring
        lookup: same commits, same profit."""
        from repro.experiments.scaleout import run_sharded_simulation
        trace = small_trace()
        sharded = run_sharded_simulation(
            1, lambda: make_scheduler("QUTS"), trace,
            QCFactory.balanced(), master_seed=3, invariants=True)
        assert sharded.total_percent > 0.0
        assert sharded.counters.get("queries_fanned_out", 0) == 0
        assert (sharded.counters["queries_committed"]
                + sharded.counters.get("queries_dropped", 0)
                + sharded.counters.get("queries_unfinished", 0)
                + sharded.counters.get("queries_rejected", 0)
                >= sharded.counters["queries_submitted"])

    def test_sharded_run_passes_invariants_with_fanout(self):
        from repro.experiments.scaleout import run_sharded_simulation
        trace = small_trace()
        result = run_sharded_simulation(
            4, lambda: make_scheduler("QUTS"), trace,
            QCFactory.balanced(), master_seed=3, invariants=True)
        assert result.invariants_checked
        assert result.counters["queries_fanned_out"] > 0
        assert 0.0 < result.total_percent <= 1.0
