"""Unit tests for the gray-failure defense layer: detector + breaker.

The failure detector turns per-replica response times and broadcast
gaps into a suspicion score on the simulated clock; the circuit breaker
is a closed → open → half-open automaton with deterministic jittered
probe backoff.  Both are pure observers of values handed in — no
simulation kernel needed here.
"""

import pytest

from repro.cluster import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                           FailureDetector, HealthConfig)
from repro.sim.rng import StreamRegistry


def make_rng(name="test.breaker", seed=7):
    return StreamRegistry(seed).stream(name)


class TestHealthConfig:
    def test_defaults_valid(self):
        config = HealthConfig()
        assert config.trip_suspicion > config.clear_suspicion

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(rt_alpha=0.0)
        with pytest.raises(ValueError):
            HealthConfig(trip_suspicion=0.5, clear_suspicion=0.6)
        with pytest.raises(ValueError):
            HealthConfig(open_ms=0.0)
        with pytest.raises(ValueError):
            HealthConfig(jitter=1.5)
        with pytest.raises(ValueError):
            HealthConfig(probe_backoff=0.5)


class TestFailureDetector:
    def test_uniform_cluster_is_unsuspicious(self):
        detector = FailureDetector(3, HealthConfig())
        for _ in range(20):
            for replica in range(3):
                detector.observe_response(replica, 10.0, 100.0)
        for replica in range(3):
            assert detector.suspicion(replica, 100.0) == pytest.approx(
                0.0, abs=1e-9)

    def test_slow_replica_becomes_suspicious(self):
        detector = FailureDetector(3, HealthConfig())
        for _ in range(50):
            detector.observe_response(0, 40.0, 100.0)  # 4x the others
            detector.observe_response(1, 10.0, 100.0)
            detector.observe_response(2, 10.0, 100.0)
        assert detector.suspicion(0, 100.0) > 1.0
        assert detector.suspicion(1, 100.0) < 0.5

    def test_gaps_raise_suspicion_and_decay(self):
        config = HealthConfig(gap_halflife_ms=1_000.0)
        detector = FailureDetector(2, config)
        detector.observe_gap(0, missed=4, now=0.0)
        fresh = detector.suspicion(0, 0.0)
        assert fresh == pytest.approx(4 * config.gap_points)
        halved = detector.suspicion(0, 1_000.0)
        assert halved == pytest.approx(fresh / 2.0)
        assert detector.suspicion(0, 20_000.0) < 1e-3

    def test_failures_count_toward_suspicion(self):
        config = HealthConfig()
        detector = FailureDetector(2, config)
        detector.observe_failure(1, now=50.0)
        assert detector.suspicion(1, 50.0) == pytest.approx(
            config.failure_points)
        assert detector.suspicion(0, 50.0) == 0.0


class TestCircuitBreaker:
    def test_starts_closed_and_routable(self):
        breaker = CircuitBreaker(HealthConfig(), make_rng())
        assert breaker.state == CLOSED
        assert breaker.routable(0.0)

    def test_trips_on_suspicion(self):
        config = HealthConfig()
        breaker = CircuitBreaker(config, make_rng())
        breaker.observe(100.0, ok=True,
                        suspicion=config.trip_suspicion + 0.1)
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.routable(100.0)

    def test_open_admits_probe_after_jittered_backoff(self):
        config = HealthConfig(open_ms=1_000.0, jitter=0.5)
        breaker = CircuitBreaker(config, make_rng())
        breaker.trip(0.0)
        # retry_at is open_ms scaled by uniform(0.5, 1.5) jitter.
        assert 500.0 <= breaker.retry_at <= 1_500.0
        assert not breaker.routable(breaker.retry_at - 1.0)
        assert breaker.routable(breaker.retry_at)
        breaker.record_routed(breaker.retry_at)
        assert breaker.state == HALF_OPEN
        assert breaker.probes == 1
        # Half-open admits only the one probe.
        assert not breaker.routable(breaker.retry_at + 1.0)

    def test_successful_probe_closes(self):
        config = HealthConfig()
        breaker = CircuitBreaker(config, make_rng())
        breaker.trip(0.0)
        breaker.record_routed(breaker.retry_at)
        breaker.observe(breaker.retry_at + 10.0, ok=True, suspicion=0.0)
        assert breaker.state == CLOSED
        assert breaker.routable(breaker.retry_at + 10.0)

    def test_failed_probe_reopens_with_longer_backoff(self):
        config = HealthConfig(open_ms=1_000.0, probe_backoff=2.0,
                              jitter=0.0)
        breaker = CircuitBreaker(config, make_rng())
        breaker.trip(0.0)
        first_retry = breaker.retry_at
        assert first_retry == pytest.approx(1_000.0)
        breaker.record_routed(first_retry)
        breaker.observe(first_retry, ok=False, suspicion=0.0)
        assert breaker.state == OPEN
        # Backoff doubled for the second open period.
        assert breaker.retry_at == pytest.approx(first_retry + 2_000.0)

    def test_backoff_capped_at_max_open_ms(self):
        config = HealthConfig(open_ms=1_000.0, probe_backoff=4.0,
                              max_open_ms=3_000.0, jitter=0.0)
        breaker = CircuitBreaker(config, make_rng())
        now = 0.0
        for _ in range(4):
            breaker.trip(now)
            now = breaker.retry_at
            breaker.record_routed(now)
            breaker.observe(now, ok=False, suspicion=0.0)
        assert breaker.retry_at - now <= 3_000.0 + 1e-9

    def test_close_resets_backoff(self):
        config = HealthConfig(open_ms=1_000.0, probe_backoff=2.0,
                              jitter=0.0)
        breaker = CircuitBreaker(config, make_rng())
        breaker.trip(0.0)
        breaker.record_routed(breaker.retry_at)
        breaker.observe(breaker.retry_at, ok=True, suspicion=0.0)
        assert breaker.state == CLOSED
        breaker.trip(10_000.0)
        # Fresh open period: back to the base backoff, not the doubled one.
        assert breaker.retry_at - 10_000.0 == pytest.approx(1_000.0)

    def test_deterministic_given_same_stream(self):
        config = HealthConfig()
        a = CircuitBreaker(config, make_rng(seed=13))
        b = CircuitBreaker(config, make_rng(seed=13))
        a.trip(0.0)
        b.trip(0.0)
        assert a.retry_at == b.retry_at

    def test_note_suspicion_trips_closed_breaker_only(self):
        config = HealthConfig()
        breaker = CircuitBreaker(config, make_rng())
        breaker.note_suspicion(0.0, config.trip_suspicion + 1.0)
        assert breaker.state == OPEN
        retry = breaker.retry_at
        # While OPEN, more suspicion does not re-trip / extend.
        breaker.note_suspicion(1.0, config.trip_suspicion + 5.0)
        assert breaker.retry_at == retry
