"""Unit tests for the transaction model."""

import pytest

from repro.db.transactions import (LIVE_STATUSES, Query, Transaction,
                                   TxnStatus, Update)
from repro.qc.contracts import QualityContract


def free_qc(lifetime=100.0):
    return QualityContract.free(lifetime=lifetime)


class TestTransactionBasics:
    def test_ids_are_unique_and_increasing(self):
        a = Update(0.0, 1.0, "X")
        b = Update(0.0, 1.0, "X")
        assert b.txn_id > a.txn_id

    def test_exec_time_must_be_positive(self):
        with pytest.raises(ValueError):
            Update(0.0, 0.0, "X")
        with pytest.raises(ValueError):
            Query(0.0, -1.0, ("A",), free_qc())

    def test_initial_state(self):
        update = Update(5.0, 2.0, "X")
        assert update.status is TxnStatus.CREATED
        assert update.remaining == 2.0
        assert update.restarts == 0
        assert update.alive

    def test_response_time_requires_finish(self):
        update = Update(5.0, 2.0, "X")
        with pytest.raises(ValueError):
            update.response_time()
        update.finish_time = 9.0
        assert update.response_time() == 4.0

    def test_reset_for_restart(self):
        update = Update(0.0, 2.0, "X")
        update.remaining = 0.5
        update.reset_for_restart()
        assert update.remaining == 2.0
        assert update.restarts == 1

    def test_live_statuses(self):
        update = Update(0.0, 1.0, "X")
        for status in LIVE_STATUSES:
            update.status = status
            assert update.alive
        update.status = TxnStatus.COMMITTED
        assert update.done

    def test_touched_items_abstract(self):
        txn = Transaction.__new__(Transaction)
        Transaction.__init__(txn, 0.0, 1.0)
        with pytest.raises(NotImplementedError):
            txn.touched_items()


class TestQuery:
    def test_requires_items(self):
        with pytest.raises(ValueError):
            Query(0.0, 5.0, (), free_qc())

    def test_class_predicates(self):
        query = Query(0.0, 5.0, ("A",), free_qc())
        assert query.is_query and not query.is_update

    def test_lifetime_from_contract(self):
        query = Query(10.0, 5.0, ("A",), free_qc(lifetime=50.0))
        assert query.lifetime_deadline == 60.0
        assert not query.past_lifetime(60.0)
        assert query.past_lifetime(60.1)

    def test_explicit_lifetime_overrides(self):
        query = Query(10.0, 5.0, ("A",), free_qc(lifetime=50.0),
                      lifetime_deadline=99.0)
        assert query.lifetime_deadline == 99.0

    def test_items_are_tuple(self):
        query = Query(0.0, 5.0, ["A", "B"], free_qc())
        assert query.items == ("A", "B")
        assert query.touched_items() == ("A", "B")

    def test_total_profit(self):
        query = Query(0.0, 5.0, ("A",), free_qc())
        query.qos_profit = 3.0
        query.qod_profit = 4.0
        assert query.total_profit == 7.0


class TestUpdate:
    def test_class_predicates(self):
        update = Update(0.0, 1.0, "X")
        assert update.is_update and not update.is_query

    def test_touched_items_single(self):
        update = Update(0.0, 1.0, "X", value=9.0)
        assert update.touched_items() == ("X",)
        assert update.value == 9.0

    def test_seq_unassigned_until_registered(self):
        assert Update(0.0, 1.0, "X").seq == -1
