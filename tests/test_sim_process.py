"""Unit tests for generator-based processes and interrupts."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.errors import ProcessError


@pytest.fixture
def env():
    return Environment()


class TestProcessBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(ProcessError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_process_return_value(self, env):
        def child(env):
            yield env.timeout(3)
            return "result"

        def parent(env, out):
            out.append((yield env.process(child(env))))

        out = []
        env.process(parent(env, out))
        env.run()
        assert out == ["result"]

    def test_process_is_alive_until_done(self, env):
        def child(env):
            yield env.timeout(10)

        proc = env.process(child(env))
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_process_name_defaults_to_function(self, env):
        def my_process(env):
            yield env.timeout(1)

        proc = env.process(my_process(env))
        assert proc.name == "my_process"

    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise ValueError("inner")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                caught.append(str(exc))

        env.process(parent(env))
        env.run()
        assert caught == ["inner"]

    def test_unhandled_process_exception_aborts_run(self, env):
        def boom(env):
            yield env.timeout(1)
            raise RuntimeError("unhandled")

        env.process(boom(env))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_yielding_non_event_raises_in_process(self, env):
        caught = []

        def bad(env):
            try:
                yield 42  # not an Event
            except ProcessError as exc:
                caught.append(str(exc))

        env.process(bad(env))
        env.run()
        assert caught and "not an Event" in caught[0]

    def test_many_sequential_yields(self, env):
        def ticker(env, out):
            for __ in range(100):
                yield env.timeout(1)
            out.append(env.now)

        out = []
        env.process(ticker(env, out))
        env.run()
        assert out == [100.0]

    def test_two_processes_interleave(self, env):
        log = []

        def walker(env, step, tag):
            for __ in range(3):
                yield env.timeout(step)
                log.append((env.now, tag))

        env.process(walker(env, 2, "fast"))
        env.process(walker(env, 3, "slow"))
        env.run()
        # At the t=6 tie, slow's timeout was scheduled first (at t=3) and
        # therefore fires first.
        assert log == [(2.0, "fast"), (3.0, "slow"), (4.0, "fast"),
                       (6.0, "slow"), (6.0, "fast"), (9.0, "slow")]

    def test_waiting_on_already_processed_event(self, env):
        """Yielding an event that already fired resumes immediately."""
        results = []

        def proc(env):
            done = env.event().succeed("early")
            yield env.timeout(5)  # let `done` be processed meanwhile
            value = yield done
            results.append((env.now, value))

        env.process(proc(env))
        env.run()
        assert results == [(5.0, "early")]


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                causes.append((env.now, interrupt.cause))

        def attacker(env, target):
            yield env.timeout(10)
            target.interrupt("reason")

        target = env.process(victim(env))
        env.process(attacker(env, target))
        env.run()
        assert causes == [(10.0, "reason")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            log.append(env.now)

        def attacker(env, target):
            yield env.timeout(10)
            target.interrupt()

        target = env.process(victim(env))
        env.process(attacker(env, target))
        env.run()
        assert log == [15.0]

    def test_interrupt_terminated_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        proc = env.process(quick(env))
        env.run()
        with pytest.raises(ProcessError):
            proc.interrupt()

    def test_self_interrupt_rejected(self, env):
        errors = []

        def selfish(env):
            me = env.active_process
            try:
                me.interrupt("self")
            except ProcessError as exc:
                errors.append(str(exc))
            yield env.timeout(1)

        env.process(selfish(env))
        env.run()
        assert errors and "interrupt itself" in errors[0]

    def test_interrupt_unsubscribes_from_target(self, env):
        """After an interrupt, the old target firing must not resume the
        process a second time."""
        resumed = []

        def victim(env):
            try:
                yield env.timeout(20)
            except Interrupt:
                resumed.append(("interrupt", env.now))
            yield env.timeout(50)
            resumed.append(("done", env.now))

        def attacker(env, target):
            yield env.timeout(10)
            target.interrupt()

        target = env.process(victim(env))
        env.process(attacker(env, target))
        env.run()
        # 20 ms timeout fires into the void; process resumes at 60.
        assert resumed == [("interrupt", 10.0), ("done", 60.0)]

    def test_interrupt_after_termination_same_timestamp(self, env):
        """An interrupt racing with termination is quietly dropped."""
        def victim(env):
            yield env.timeout(10)

        def attacker(env, target):
            yield env.timeout(10)
            if target.is_alive:
                target.interrupt()

        target = env.process(victim(env))
        env.process(attacker(env, target))
        env.run()  # must not raise
        assert not target.is_alive
