"""Tests for ``repro.serve`` — the live asyncio QC gateway.

Three layers:

* **clock and client machinery** — ManualClock periodics, retry budget
  arithmetic (including the ``(1 + fraction) × offered`` storm bound);
* **the gateway** — completion, backpressure, shedding, brownout
  degradation, deadlines, supersession, forced shutdown, and the
  outcome-conservation law as a hypothesis property under concurrent
  enqueue / cancellation / shedding;
* **one core, two worlds** — the same ``SchedulerCore`` decision
  sequence on a hand-cranked ManualClock and on the DES's simulated
  clock, plus the wire protocol and the CLI entry points.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.admission import BrownoutAdmission, OverloadShedding
from repro.db.transactions import Query, TxnStatus, Update
from repro.qc.contracts import QualityContract
from repro.scheduling import DESClock, QUTSScheduler, make_scheduler
from repro.serve import (DEADLINE_FACTOR, OUTCOMES, GatewayConfig,
                         LoadgenConfig, ManualClock, MonotonicClock,
                         ProtocolError, QCGateway, RetryBudget,
                         RetryPolicy, build_schedule, drive, qc_from_wire,
                         qc_to_wire, run_cell, serve_tcp, summarize)
from repro.serve.cli import build_loadgen_parser, build_serve_parser
from repro.sim import Environment
from repro.sim.rng import StreamRegistry


def loose_qc(lifetime: float = 150_000.0) -> QualityContract:
    return QualityContract.step(30.0, 10_000.0, 20.0, 50.0,
                                lifetime=lifetime)


def tight_qc(rt_max: float = 20.0,
             lifetime: float = 150_000.0) -> QualityContract:
    return QualityContract.step(30.0, rt_max, 20.0, 1.0,
                                lifetime=lifetime)


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
class TestManualClock:
    def test_advance_fires_periodics_in_due_order(self):
        clock = ManualClock()
        fired = []
        clock.call_periodic(10.0, lambda now: fired.append(("a", now)),
                            name="a")
        clock.call_periodic(25.0, lambda now: fired.append(("b", now)),
                            name="b")
        clock.advance(50.0)
        # Ties (both due at 50) fire in registration order.
        assert fired == [("a", 10.0), ("a", 20.0), ("b", 25.0),
                         ("a", 30.0), ("a", 40.0), ("a", 50.0),
                         ("b", 50.0)]
        assert clock.now == 50.0

    def test_rejects_backwards_time_and_bad_periods(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.call_periodic(0.0, lambda now: None, name="x")

    def test_monotonic_clock_advances(self):
        async def scenario():
            clock = MonotonicClock()
            first = clock.now
            await asyncio.sleep(0.01)
            assert clock.now > first

        asyncio.run(scenario())

    def test_monotonic_clock_runs_periodics(self):
        async def scenario():
            clock = MonotonicClock()
            fired = []
            clock.call_periodic(5.0, fired.append, name="tick")
            clock.start()
            await asyncio.sleep(0.05)
            await clock.stop()
            return fired

        fired = asyncio.run(scenario())
        assert len(fired) >= 2
        assert fired == sorted(fired)


# ----------------------------------------------------------------------
# Client retry machinery
# ----------------------------------------------------------------------
class TestRetryBudget:
    def test_storm_bound_holds_by_construction(self):
        # However hostile the server, total sends can never exceed
        # (1 + fraction) x first sends — the acceptance bound.
        budget = RetryBudget(fraction=0.1)
        offered = 500
        for _ in range(offered):
            budget.on_first_send()
            while budget.try_spend():  # retry as hard as possible
                pass
        assert budget.total_sends <= math.floor((1 + 0.1) * offered)
        assert budget.retries_denied > 0

    def test_tokens_accumulate_across_first_sends(self):
        budget = RetryBudget(fraction=0.5)
        budget.on_first_send()
        assert not budget.try_spend()  # 0.5 tokens: not enough
        budget.on_first_send()
        assert budget.try_spend()      # 1.0 tokens: one retry
        assert not budget.try_spend()

    def test_policy_backoff_is_bounded_and_jittered(self):
        rng = StreamRegistry(3).stream("test.retry")
        policy = RetryPolicy(rng, base_ms=10.0, factor=2.0,
                             max_backoff_ms=40.0, max_retries=5)
        for attempt in range(6):
            backoff = policy.backoff_ms(attempt)
            assert 0.0 <= backoff <= min(10.0 * 2 ** attempt, 40.0)

    def test_policy_respects_cap_then_budget(self):
        rng = StreamRegistry(3).stream("test.retry")
        budget = RetryBudget(fraction=1.0)
        policy = RetryPolicy(rng, max_retries=2, budget=budget)
        assert not policy.should_retry(2)          # cap first
        assert not policy.should_retry(0)          # budget dry (0 tokens)
        budget.on_first_send()
        assert policy.should_retry(0)              # 1 token earned


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
def gateway_scenario(coro_fn, **gateway_kwargs):
    """Run ``coro_fn(gateway)`` against a started gateway, always
    stopping it, inside a fresh event loop."""

    async def scenario():
        gateway = QCGateway(**gateway_kwargs)
        await gateway.start()
        try:
            return await coro_fn(gateway)
        finally:
            await gateway.stop()

    return asyncio.run(scenario())


class TestGateway:
    def test_query_and_update_complete(self):
        async def scenario(gateway):
            up = gateway.submit_update("S0001", 42.0, exec_ms=1.0)
            q = gateway.submit_query(("S0001",), loose_qc(), exec_ms=2.0)
            return await up, await q

        up_reply, q_reply = gateway_scenario(
            scenario, scheduler=make_scheduler("FIFO"))
        assert up_reply.outcome == "completed"
        assert q_reply.outcome == "completed"
        assert q_reply.qos_profit == 30.0
        assert q_reply.values == {"S0001": 42.0}
        assert q_reply.response_time_ms is not None
        assert q_reply.response_time_ms >= 2.0

    def test_backpressure_past_the_query_bound(self):
        async def scenario(gateway):
            first = gateway.submit_query(("S0001",), loose_qc(),
                                         exec_ms=30.0)
            await asyncio.sleep(0.01)  # let the executor pick it up
            queued = gateway.submit_query(("S0002",), loose_qc(),
                                          exec_ms=1.0)
            rejected = gateway.submit_query(("S0003",), loose_qc(),
                                            exec_ms=1.0)
            return await first, await queued, await rejected

        first, queued, rejected = gateway_scenario(
            scenario, scheduler=make_scheduler("FIFO"),
            config=GatewayConfig(max_pending_queries=1))
        assert first.outcome == "completed"
        assert queued.outcome == "completed"
        assert rejected.outcome == "backpressure"
        assert rejected.retry_after_ms is not None

    def test_admission_shedding(self):
        async def scenario(gateway):
            busy = gateway.submit_query(("S0001",), loose_qc(),
                                        exec_ms=30.0)
            await asyncio.sleep(0.01)
            queued = gateway.submit_query(("S0002",), loose_qc(),
                                          exec_ms=1.0)
            # Shedding is value-aware: only a cheap contract gets cut.
            cheap = QualityContract.step(1.0, 10_000.0, 0.5, 50.0)
            shed = gateway.submit_query(("S0003",), cheap, exec_ms=1.0)
            replies = (await busy, await queued, await shed)
            return replies, gateway.ledger.counters.value("queries_shed")

        replies, shed_count = gateway_scenario(
            scenario, scheduler=make_scheduler("FIFO"),
            admission=OverloadShedding(high_watermark=1, low_watermark=0))
        assert [r.outcome for r in replies] == \
            ["completed", "completed", "shed"]
        assert shed_count == 1

    def test_brownout_degrades_and_forfeits_qod(self):
        async def scenario(gateway):
            busy = gateway.submit_query(("S0001",), loose_qc(),
                                        exec_ms=30.0)
            await asyncio.sleep(0.01)
            queued = gateway.submit_query(("S0002",), loose_qc(),
                                          exec_ms=1.0)
            degraded = gateway.submit_query(("S0003",), loose_qc(),
                                            exec_ms=8.0)
            return await busy, await queued, await degraded

        busy, queued, degraded = gateway_scenario(
            scenario, scheduler=make_scheduler("FIFO"),
            admission=BrownoutAdmission(high_watermark=1, low_watermark=0))
        assert degraded.outcome == "completed"
        assert degraded.degraded
        assert degraded.qod_profit == 0.0
        assert degraded.qos_profit > 0.0
        assert not queued.degraded

    def test_expired_query_times_out(self):
        async def scenario(gateway):
            blocker = gateway.submit_update("S0001", 1.0, exec_ms=80.0)
            await asyncio.sleep(0.005)
            doomed = gateway.submit_query(("S0002",), tight_qc(rt_max=5.0),
                                          exec_ms=1.0)
            return await blocker, await doomed

        blocker, doomed = gateway_scenario(
            scenario, scheduler=make_scheduler("FIFO"),
            config=GatewayConfig(sweep_interval_ms=5.0))
        assert blocker.outcome == "completed"
        assert doomed.outcome == "timed_out"

    def test_baseline_never_cancels(self):
        async def scenario(gateway):
            blocker = gateway.submit_update("S0001", 1.0, exec_ms=60.0)
            await asyncio.sleep(0.005)
            late = gateway.submit_query(("S0002",), tight_qc(rt_max=5.0),
                                        exec_ms=1.0)
            return await blocker, await late

        blocker, late = gateway_scenario(
            scenario, scheduler=make_scheduler("FIFO"),
            config=GatewayConfig(deadline_factor=None, drop_expired=False))
        # The no-defenses arm still answers — far past rtmax, earning
        # nothing, which is exactly what the overload tier measures.
        assert late.outcome == "completed"
        assert late.qos_profit == 0.0

    def test_update_supersession(self):
        async def scenario(gateway):
            busy = gateway.submit_query(("S0009",), loose_qc(),
                                        exec_ms=30.0)
            await asyncio.sleep(0.01)
            stale = gateway.submit_update("S0005", 1.0, exec_ms=1.0)
            fresh = gateway.submit_update("S0005", 2.0, exec_ms=1.0)
            return await busy, await stale, await fresh

        _, stale, fresh = gateway_scenario(
            scenario, scheduler=make_scheduler("FIFO"))
        assert stale.outcome == "superseded"
        assert fresh.outcome == "completed"

    def test_stop_resolves_leftovers_unfinished(self):
        async def scenario():
            gateway = QCGateway(make_scheduler("FIFO"))
            await gateway.start()
            hopeless = gateway.submit_query(("S0001",), loose_qc(),
                                            exec_ms=10_000.0)
            await asyncio.sleep(0.01)
            await gateway.stop()
            return await hopeless

        reply = asyncio.run(scenario())
        assert reply.outcome == "unfinished"

    def test_preemption_requeues_the_running_txn(self):
        async def scenario(gateway):
            # QUTS with fixed rho 1.0 always prefers queries; a query
            # arriving mid-update preempts it at the next slice edge.
            update = gateway.submit_update("S0001", 1.0, exec_ms=20.0)
            await asyncio.sleep(0.008)
            query = gateway.submit_query(("S0001",), loose_qc(),
                                         exec_ms=1.0)
            q_reply = await query
            u_reply = await update
            return q_reply, u_reply

        q_reply, u_reply = gateway_scenario(
            scenario, scheduler=QUTSScheduler(fixed_rho=1.0),
            config=GatewayConfig(slice_ms=2.0))
        assert q_reply.outcome == "completed"
        assert u_reply.outcome == "completed"
        # The query finished while the longer, earlier update waited.
        assert q_reply.response_time_ms is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(max_pending_queries=0)
        with pytest.raises(ValueError):
            GatewayConfig(slice_ms=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(deadline_factor=-1.0)
        with pytest.raises(ValueError):
            GatewayConfig(cpu_speed=0.0)


# ----------------------------------------------------------------------
# Conservation: every submission gets exactly one terminal outcome
# ----------------------------------------------------------------------
REQUESTS = st.lists(
    st.tuples(
        st.sampled_from(["query", "query", "update"]),
        st.floats(min_value=0.0, max_value=2.0),    # pre-submit gap (ms)
        st.floats(min_value=0.2, max_value=5.0),    # exec_ms
        st.integers(min_value=0, max_value=2),      # key
        st.sampled_from([6.0, 25.0, 10_000.0]),     # rt_max
    ),
    min_size=1, max_size=18)


class TestOutcomeConservation:
    @settings(max_examples=20, deadline=None)
    @given(requests=REQUESTS)
    def test_no_request_lost_or_duplicated(self, requests):
        """Under concurrent enqueue, deadline cancellation, shedding,
        supersession, and backpressure, every offered request resolves
        to exactly one terminal outcome."""

        async def episode():
            gateway = QCGateway(
                make_scheduler("FIFO"),
                GatewayConfig(max_pending_queries=3,
                              max_pending_updates=3,
                              deadline_factor=2.0,
                              sweep_interval_ms=4.0),
                admission=OverloadShedding(high_watermark=2,
                                           low_watermark=0))
            await gateway.start()
            futures = []
            for kind, gap_ms, exec_ms, key, rt_max in requests:
                await asyncio.sleep(gap_ms / 1000.0)
                if kind == "query":
                    futures.append(gateway.submit_query(
                        (f"S{key:04d}",), tight_qc(rt_max=rt_max),
                        exec_ms))
                else:
                    futures.append(gateway.submit_update(
                        f"S{key:04d}", 1.0, exec_ms))
            await asyncio.wait(futures, timeout=5.0)
            await gateway.stop()  # stragglers resolve "unfinished"
            return [future.result() for future in futures]

        replies = asyncio.run(episode())
        assert len(replies) == len(requests)  # nothing lost
        counts = {outcome: 0 for outcome in OUTCOMES}
        for reply in replies:
            assert reply.outcome in OUTCOMES
            counts[reply.outcome] += 1
        assert sum(counts.values()) == len(requests)  # nothing duplicated


# ----------------------------------------------------------------------
# One core, two worlds
# ----------------------------------------------------------------------
def _drive_core(scheduler, advance):
    """Feed a fixed submission/pop script to ``scheduler``; ``advance``
    moves its world's clock to each decision instant."""
    script = []
    for step in range(12):
        now = float(step * 25)
        advance(now)
        if step % 3 != 2:
            query = Query(now, 4.0, ("S0001",), loose_qc())
            query.status = TxnStatus.QUEUED
            scheduler.submit_query(query)
        if step % 2 == 0:
            update = Update(now, 1.5, "S0002", 1.0)
            update.status = TxnStatus.QUEUED
            scheduler.submit_update(update)
        txn = scheduler.next_transaction(now)
        if txn is None:
            script.append(None)
            continue
        script.append(("query" if txn.is_query else "update",
                       txn.arrival_time))
        txn.status = TxnStatus.COMMITTED
        txn.finish_time = now
        if txn.is_query:
            scheduler.notify_query_finished(txn)
    return script, scheduler


class TestOneCoreTwoWorlds:
    def test_quts_decisions_match_on_manual_and_des_clocks(self):
        """The same QUTS core, bound once to a hand-cranked clock and
        once to the DES clock, makes bit-identical decisions — the
        refactor's whole point."""
        manual = QUTSScheduler(tau=30.0, omega=50.0)
        clock = ManualClock()
        manual.bind_clock(clock, StreamRegistry(11))
        manual_script, manual = _drive_core(
            manual, lambda t: clock.advance(t - clock.now))

        des = QUTSScheduler(tau=30.0, omega=50.0)
        env = Environment()
        des.bind_clock(DESClock(env), StreamRegistry(11))
        des_script, des = _drive_core(
            des, lambda t: env.run(until=t) if t > env.now else None)

        assert manual_script == des_script
        assert manual.rho == des.rho
        assert list(manual.rho_series.values) == \
            list(des.rho_series.values)

    def test_gateway_drives_the_des_scheduler_classes(self):
        # Every DES policy name serves live, unchanged.
        for policy in ("FIFO", "UH", "QH", "QUTS"):
            async def scenario(gateway):
                return await gateway.submit_query(
                    ("S0001",), loose_qc(), exec_ms=1.0)

            reply = gateway_scenario(
                scenario, scheduler=make_scheduler(policy))
            assert reply.outcome == "completed", policy


# ----------------------------------------------------------------------
# Wire protocol + TCP front
# ----------------------------------------------------------------------
class TestProtocol:
    def test_qc_round_trips(self):
        qc = tight_qc(rt_max=75.0, lifetime=5_000.0)
        wire = qc_to_wire(qc)
        back = qc_from_wire(wire)
        assert qc_to_wire(back) == wire

    def test_bad_wire_qc_raises(self):
        with pytest.raises(ProtocolError):
            qc_from_wire({"shape": "cubic"})
        with pytest.raises(ProtocolError):
            qc_from_wire({"shape": "step", "qos_max": "not a number"})

    def test_tcp_front_serves_queries_and_updates(self):
        async def scenario():
            gateway = QCGateway(make_scheduler("FIFO"))
            await gateway.start()
            server = await serve_tcp(gateway, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(json.dumps(
                {"op": "update", "id": 1, "item": "S0001",
                 "value": 7.5, "exec_ms": 1.0}).encode() + b"\n")
            writer.write(json.dumps(
                {"op": "query", "id": 2, "items": ["S0001"],
                 "exec_ms": 1.0,
                 "qc": qc_to_wire(loose_qc())}).encode() + b"\n")
            writer.write(b"this is not json\n")
            await writer.drain()
            replies = {}
            while len(replies) < 3:
                line = await asyncio.wait_for(reader.readline(), 5.0)
                reply = json.loads(line)
                replies[reply["id"]] = reply
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await gateway.stop()
            return replies

        replies = asyncio.run(scenario())
        assert replies[1]["outcome"] == "completed"
        assert replies[2]["outcome"] == "completed"
        assert replies[2]["values"] == {"S0001": 7.5}
        assert replies[None]["outcome"] == "error"


# ----------------------------------------------------------------------
# The load harness
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_schedule_is_deterministic_and_open_loop(self):
        config = LoadgenConfig(duration_ms=500.0)
        first = build_schedule(config)
        second = build_schedule(config)

        def fingerprint(schedule):
            return [(a.at_ms, a.kind, a.items, a.exec_ms, a.value,
                     repr(a.qc)) for a in schedule]

        assert fingerprint(first) == fingerprint(second)
        assert all(a.at_ms <= b.at_ms for a, b in zip(first, first[1:]))
        assert {a.kind for a in first} == {"query", "update"}

    def test_multiplier_scales_the_offered_load(self):
        base = build_schedule(LoadgenConfig(duration_ms=1_000.0))
        heavy = build_schedule(LoadgenConfig(duration_ms=1_000.0,
                                             rate_multiplier=4.0))
        assert len(heavy) > 2.5 * len(base)

    def test_correctness_tier_conserves_requests(self):
        config = LoadgenConfig(duration_ms=300.0, master_seed=5)
        report = run_cell("FIFO", defended=True, admission="brownout",
                          config=config)
        offered = report["offered_queries"]
        assert offered > 0
        assert sum(report["outcomes"].values()) == offered
        assert report["outcomes"]["completed"] > 0
        assert 0.0 <= report["goodput"] <= 1.0
        assert report["response_time_ms"]["p50"] is not None

    def test_retry_storm_is_bounded(self):
        """Acceptance: total client sends <= (1 + budget fraction) x
        offered load, even under heavy shedding."""
        config = LoadgenConfig(duration_ms=500.0, rate_multiplier=8.0,
                               retry_fraction=0.1)
        report = run_cell("FIFO", defended=True, admission="shed",
                          config=config)
        offered = report["offered_queries"] + report["offered_updates"]
        assert report["client_sends"] > offered  # retries did happen
        assert report["client_sends"] <= math.floor(1.1 * offered) + 1

    def test_baseline_cell_disables_every_defense(self):
        config = LoadgenConfig(duration_ms=300.0)
        report = run_cell("FIFO", defended=False, config=config)
        offered = report["offered_queries"]
        outcomes = report["outcomes"]
        assert outcomes["shed"] == 0
        assert outcomes["backpressure"] == 0
        assert outcomes["timed_out"] == 0
        assert sum(outcomes.values()) == offered

    def test_summarize_handles_an_empty_cell(self):
        async def scenario():
            gateway = QCGateway(make_scheduler("FIFO"))
            await gateway.start()
            try:
                return summarize(
                    await drive(gateway, [],
                                LoadgenConfig(duration_ms=10.0)),
                    gateway)
            finally:
                await gateway.stop()

        report = asyncio.run(scenario())
        assert report["offered_queries"] == 0
        assert report["goodput"] == 0.0
        assert report["response_time_ms"]["p50"] is None


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCli:
    def test_parser_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.policy == "QUTS"
        assert args.admission == "brownout"
        assert args.port == 8642
        args = build_loadgen_parser().parse_args(["--multiplier", "2.5"])
        assert args.multiplier == 2.5
        assert args.duration_ms == 2_500.0

    def test_loadgen_main_prints_a_report(self, capsys):
        from repro.cli import main
        exit_code = main(["loadgen", "--duration-ms", "250",
                          "--policy", "FIFO", "--retry-fraction", "-1"])
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["policy"] == "FIFO"
        assert report["defended"] is True
        assert sum(report["outcomes"].values()) == \
            report["offered_queries"]

    def test_deadline_factor_constant_is_shared(self):
        # The report-side deadline and the server default must agree,
        # or the two overload arms would be scored on different sticks.
        assert GatewayConfig().deadline_factor == DEADLINE_FACTOR
