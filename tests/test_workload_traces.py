"""Unit tests for trace containers and CSV persistence."""

import pytest

from repro.workload.traces import QueryRecord, Trace, UpdateRecord


def small_trace():
    queries = [QueryRecord(10.0, ("A", "B"), 7.0),
               QueryRecord(5.0, ("C",), 6.0)]
    updates = [UpdateRecord(1.0, "A", 2.0, value=3.5),
               UpdateRecord(20.0, "B", 1.5, value=4.5)]
    return Trace(queries, updates, duration_ms=30.0, name="tiny")


class TestRecords:
    def test_query_record_validation(self):
        with pytest.raises(ValueError):
            QueryRecord(0.0, ("A",), 0.0)
        with pytest.raises(ValueError):
            QueryRecord(0.0, (), 5.0)

    def test_update_record_validation(self):
        with pytest.raises(ValueError):
            UpdateRecord(0.0, "A", -1.0)

    def test_records_frozen(self):
        record = QueryRecord(0.0, ("A",), 5.0)
        with pytest.raises(AttributeError):
            record.exec_ms = 9.0  # type: ignore[misc]


class TestTrace:
    def test_sorted_on_construction(self):
        trace = small_trace()
        assert [q.arrival_ms for q in trace.queries] == [5.0, 10.0]
        assert [u.arrival_ms for u in trace.updates] == [1.0, 20.0]

    def test_stocks_union(self):
        assert small_trace().stocks == {"A", "B", "C"}

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            Trace([], [], duration_ms=0.0)

    def test_arrivals_outside_duration_rejected(self):
        with pytest.raises(ValueError):
            Trace([QueryRecord(50.0, ("A",), 5.0)], [], duration_ms=30.0)

    def test_slice_prefix(self):
        trace = small_trace()
        prefix = trace.slice(8.0)
        assert len(prefix.queries) == 1
        assert len(prefix.updates) == 1
        assert prefix.duration_ms == 8.0

    def test_slice_bounds(self):
        trace = small_trace()
        with pytest.raises(ValueError):
            trace.slice(0.0)
        with pytest.raises(ValueError):
            trace.slice(100.0)

    def test_roundtrip_save_load(self, tmp_path):
        trace = small_trace()
        trace.save(tmp_path / "t")
        loaded = Trace.load(tmp_path / "t")
        assert loaded.name == trace.name
        assert loaded.duration_ms == trace.duration_ms
        assert loaded.queries == trace.queries
        assert loaded.updates == trace.updates

    def test_roundtrip_preserves_multi_item_reads(self, tmp_path):
        trace = small_trace()
        trace.save(tmp_path / "t")
        loaded = Trace.load(tmp_path / "t")
        assert loaded.queries[1].items == ("A", "B")
