"""Property-based robustness invariants (any policy, any fault schedule).

Whatever faults are injected and whichever scheduler runs, the system
must degrade — never misbehave:

* profit percentages stay in [0, 1];
* the outcome counters balance: every submitted contract ends up
  committed, lifetime-dropped, unfinished at the horizon, or lost to a
  crash — queries never vanish from the ledger;
* the router never returns an out-of-range or dead replica index.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HedgedRouter, run_cluster_simulation
from repro.faults import FaultEvent, FaultPlan
from repro.faults.plan import (CRASH, PORTAL_CRASH, PORTAL_RECOVER, RECOVER,
                               RESUME_UPDATES, SPIKE_END, SPIKE_START,
                               STALL_UPDATES)
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

DURATION_MS = 8_000.0
TRACE = StockWorkloadGenerator(WorkloadSpec().scaled(DURATION_MS),
                               master_seed=23).generate()


class _VerifyingRouter(HedgedRouter):
    """Asserts the failure-awareness contract on every routing decision."""

    def __init__(self):
        super().__init__()
        self.checked = 0

    def choose(self, query, replicas):
        index = super().choose(query, replicas)
        assert 0 <= index < len(replicas), index
        assert replicas[index].up, f"routed to dead replica {index}"
        self.checked += 1
        return index


times = st.floats(min_value=0.0, max_value=DURATION_MS,
                  allow_nan=False, allow_infinity=False)
durations = st.floats(min_value=50.0, max_value=6_000.0,
                      allow_nan=False, allow_infinity=False)
gaps = st.floats(min_value=1.0, max_value=4_000.0,
                 allow_nan=False, allow_infinity=False)


@st.composite
def fault_plans(draw):
    """Well-formed schedules: per-replica outages never overlap
    themselves (FaultPlan validation rejects double-crashes), and a
    portal-wide outage replaces replica-level ones when drawn."""
    events = []
    if draw(st.booleans()):
        at = draw(times)
        events.append(FaultEvent(at, PORTAL_CRASH))
        events.append(FaultEvent(at + draw(durations), PORTAL_RECOVER))
    else:
        for replica in (0, 1):
            t = draw(times)
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                down = draw(durations)
                events.append(FaultEvent(t, CRASH, replica=replica))
                events.append(
                    FaultEvent(t + down, RECOVER, replica=replica))
                t += down + draw(gaps)
    plan = FaultPlan(events)
    if draw(st.booleans()):
        plan = plan.merged(FaultPlan(
            [FaultEvent(draw(times), STALL_UPDATES),
             FaultEvent(draw(times) + DURATION_MS, RESUME_UPDATES)]))
    if draw(st.booleans()):
        at = draw(times)
        plan = plan.merged(FaultPlan(
            [FaultEvent(at, SPIKE_START,
                        magnitude=draw(st.floats(min_value=1.0,
                                                 max_value=3.0))),
             FaultEvent(at + draw(durations), SPIKE_END)]))
    return plan


class TestFaultScheduleInvariants:
    @given(plan=fault_plans(),
           policy=st.sampled_from(("FIFO", "QUTS")))
    @settings(max_examples=12, deadline=None)
    def test_degrades_never_misbehaves(self, plan, policy):
        router = _VerifyingRouter()
        result = run_cluster_simulation(
            2, lambda: make_scheduler(policy), TRACE,
            QCFactory.balanced(), router=router, master_seed=1,
            fault_plan=plan, invariants=True)

        assert 0.0 <= result.total_percent <= 1.0
        assert 0.0 <= result.qos_percent <= 1.0
        assert 0.0 <= result.qod_percent <= 1.0
        assert 0.0 <= result.availability <= 1.0
        assert 0.0 <= result.replica_availability <= 1.0
        # The union of outage intervals never exceeds the replica-ms sum
        # and availability ranks accordingly.
        assert result.downtime_union_ms <= result.downtime_ms + 1e-6
        assert result.invariants_checked

        c = result.counters
        assert c.get("queries_submitted", 0) == (
            c.get("queries_committed", 0)
            + c.get("queries_dropped_lifetime", 0)
            + c.get("queries_unfinished", 0)
            + c.get("queries_lost_crash", 0))
        # At least every base trace query was priced into a ledger
        # (spike clones only ever add on top).
        assert c.get("queries_submitted", 0) \
            + c.get("queries_rejected", 0) >= len(TRACE.queries)
        # Failovers are retried or lost, never silently dropped.
        assert c.get("query_retries", 0) + c.get("queries_lost_crash", 0) \
            >= c.get("queries_failed_over", 0) \
            + c.get("queries_stranded_arrival", 0) \
            - c.get("queries_unfinished", 0)
        assert router.checked > 0


@st.composite
def blackout_plans(draw):
    """Schedules with a guaranteed zero-healthy-replica window: both
    replicas are down at once for part of the run."""
    start = draw(st.floats(min_value=500.0, max_value=DURATION_MS / 2,
                           allow_nan=False, allow_infinity=False))
    down0 = draw(durations)
    # Replica 1 crashes strictly inside replica 0's outage.
    offset = draw(st.floats(min_value=0.0, max_value=0.9,
                            allow_nan=False, allow_infinity=False))
    other = start + offset * down0
    down1 = draw(durations)
    return FaultPlan([
        FaultEvent(start, CRASH, replica=0),
        FaultEvent(start + down0, RECOVER, replica=0),
        FaultEvent(other, CRASH, replica=1),
        FaultEvent(other + down1, RECOVER, replica=1),
    ])


class TestZeroHealthyReplicaWindows:
    @given(plan=blackout_plans(),
           policy=st.sampled_from(("FIFO", "QUTS")))
    @settings(max_examples=12, deadline=None)
    def test_total_blackout_strands_but_never_drops(self, plan, policy):
        """With every replica down at once, arrivals strand and retry;
        the run still completes and no query silently vanishes."""
        result = run_cluster_simulation(
            2, lambda: make_scheduler(policy), TRACE,
            QCFactory.balanced(), router=HedgedRouter(), master_seed=1,
            fault_plan=plan, invariants=True)

        c = result.counters
        # Conservation: every submitted contract reached a terminal
        # outcome — committed, dropped-by-lifetime, unfinished at the
        # horizon, or lost to the crash.  Nothing disappears.
        assert c.get("queries_submitted", 0) == (
            c.get("queries_committed", 0)
            + c.get("queries_dropped_lifetime", 0)
            + c.get("queries_unfinished", 0)
            + c.get("queries_lost_crash", 0))
        # The blackout really happened and queries still completed
        # around it.
        assert c["replica_crashes"] == 2
        assert result.downtime_union_ms > 0.0
        assert c.get("queries_committed", 0) > 0
        # Anything stranded while no replica was routable was later
        # adopted (a retry) or accounted as lost — never forgotten.
        assert c.get("query_retries", 0) + c.get("queries_lost_crash", 0) \
            + c.get("queries_unfinished", 0) \
            >= c.get("queries_stranded_arrival", 0)
        assert result.invariants_checked
