"""Unit tests for the kernel's event primitives."""

import pytest

from repro.sim import Environment
from repro.sim.errors import EventLifecycleError
from repro.sim.events import ConditionValue, Event, Timeout, all_of, any_of


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_fresh_event_is_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value_and_ok(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_sets_exception(self, env):
        exc = RuntimeError("boom")
        event = env.event().fail(exc)
        assert event.triggered
        assert not event.ok
        assert event.value is exc

    def test_fail_requires_exception_instance(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_double_succeed_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(EventLifecycleError):
            event.succeed()

    def test_succeed_after_fail_raises(self, env):
        event = env.event().fail(ValueError("x"))
        event.defuse()
        with pytest.raises(EventLifecycleError):
            event.succeed()

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(EventLifecycleError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(EventLifecycleError):
            env.event().ok

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]

    def test_processed_after_run(self, env):
        event = env.event().succeed()
        env.run()
        assert event.processed

    def test_trigger_copies_success(self, env):
        source = env.event().succeed("v")
        target = env.event()
        target.trigger(source)
        assert target.ok and target.value == "v"

    def test_trigger_copies_failure(self, env):
        exc = ValueError("source failed")
        source = env.event().fail(exc)
        source.defuse()
        target = env.event()
        target.trigger(source)
        target.defuse()
        assert not target.ok
        assert target.value is exc

    def test_trigger_from_untriggered_source_raises(self, env):
        # Regression: an untriggered source has _ok is None, which the
        # old code read as falsy and "failed" the target with the
        # PENDING sentinel as its exception object.
        source = env.event()
        target = env.event()
        with pytest.raises(EventLifecycleError, match="not .*triggered"):
            target.trigger(source)
        # The target must be untouched — still schedulable.
        assert not target.triggered
        target.succeed("fine")
        assert target.value == "fine"


class TestTimeout:
    def test_timeout_fires_at_delay(self, env):
        seen = []

        def proc(env):
            yield env.timeout(12.5)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [12.5]

    def test_timeout_carries_value(self, env):
        results = []

        def proc(env):
            value = yield env.timeout(1.0, value="hello")
            results.append(value)

        env.process(proc(env))
        env.run()
        assert results == ["hello"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_zero_delay_fires_now(self, env):
        seen = []

        def proc(env):
            yield env.timeout(0.0)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [0.0]

    def test_timeouts_fire_in_order(self, env):
        order = []

        def waiter(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(waiter(env, 30, "c"))
        env.process(waiter(env, 10, "a"))
        env.process(waiter(env, 20, "b"))
        env.run()
        assert order == ["a", "b", "c"]


class TestConditions:
    def test_any_of_returns_first(self, env):
        results = []

        def proc(env):
            fast = env.timeout(5, "fast")
            slow = env.timeout(50, "slow")
            value = yield any_of(env, [fast, slow])
            results.append((env.now, list(value.todict().values())))

        env.process(proc(env))
        env.run()
        assert results == [(5.0, ["fast"])]

    def test_all_of_waits_for_all(self, env):
        results = []

        def proc(env):
            value = yield all_of(env, [env.timeout(5, "a"),
                                       env.timeout(9, "b")])
            results.append((env.now, sorted(value.todict().values())))

        env.process(proc(env))
        env.run()
        assert results == [(9.0, ["a", "b"])]

    def test_all_of_empty_is_immediate(self, env):
        fired = []

        def proc(env):
            yield all_of(env, [])
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [0.0]

    def test_any_of_empty_is_immediate(self, env):
        fired = []

        def proc(env):
            yield any_of(env, [])
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [0.0]

    def test_condition_propagates_failure(self, env):
        caught = []

        def failer(env):
            yield env.timeout(1)
            raise RuntimeError("child failed")

        def proc(env):
            child = env.process(failer(env))
            try:
                yield all_of(env, [child, env.timeout(100)])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(proc(env))
        env.run()
        assert caught == ["child failed"]

    def test_condition_rejects_foreign_events(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            all_of(env, [env.event(), other.event()])

    def test_condition_value_mapping_interface(self, env):
        collected = {}

        def proc(env):
            t1 = env.timeout(1, "x")
            value = yield all_of(env, [t1])
            collected["contains"] = t1 in value
            collected["len"] = len(value)
            collected["getitem"] = value[t1]
            collected["iter"] = list(iter(value))

        env.process(proc(env))
        env.run()
        assert collected["contains"] is True
        assert collected["len"] == 1
        assert collected["getitem"] == "x"
        assert len(collected["iter"]) == 1

    def test_condition_value_missing_key(self):
        value = ConditionValue()
        with pytest.raises(KeyError):
            value[object()]  # noqa: B018 - exercising __getitem__

    def test_condition_value_eq_dict(self, env):
        event = Event(env)
        event._ok = True
        event._value = 3
        value = ConditionValue()
        value.events.append(event)
        assert value == {event: 3}
