"""Determinism of sharded runs: byte-identical across workers and reruns.

The repo's bit-identity contract (see ``repro.parallel`` and the
simlint/simsan tooling) extends to the shard layer: ring placement,
scatter-gather resolution order, and migration schedules derive only
from the master seed, so the same cell must produce the same
:meth:`~repro.experiments.scaleout.ShardedResult.digest` whether it ran
in-process, under a process pool of any size, or twice in a row.
"""

import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.scaleout import (SKEW_REBALANCE, _scaleout_cell,
                                        hot_key_spec, shard_sweep)
from repro.parallel import Task, run_tasks
from repro.qc.generator import QCFactory
from repro.workload.synthetic import WorkloadSpec


def _spec(duration_ms=8_000.0):
    import dataclasses
    spec = WorkloadSpec().scaled(duration_ms)
    return dataclasses.replace(spec, n_stocks=96)


def _digest_bytes(result):
    return json.dumps(result.digest(), sort_keys=True).encode()


def _cells(spec, rebalance):
    return [Task(_scaleout_cell,
                 (n, "QUTS", spec, 7, 1, QCFactory.balanced(), 1,
                  rebalance, False),
                 key=f"shards={n}")
            for n in (1, 2, 4)]


class TestShardedDeterminism:
    def test_byte_identical_across_worker_counts(self):
        spec = _spec()
        sequential = run_tasks(_cells(spec, None), workers=1)
        pooled = run_tasks(_cells(spec, None), workers=2)
        for a, b in zip(sequential, pooled):
            assert _digest_bytes(a) == _digest_bytes(b)

    def test_byte_identical_across_reruns_with_rebalancing(self):
        spec = hot_key_spec(_spec())
        first = _scaleout_cell(4, "QUTS", spec, 7, 1,
                               QCFactory.balanced(), 1, SKEW_REBALANCE,
                               False)
        second = _scaleout_cell(4, "QUTS", spec, 7, 1,
                                QCFactory.balanced(), 1, SKEW_REBALANCE,
                                False)
        assert _digest_bytes(first) == _digest_bytes(second)

    def test_seeds_actually_matter(self):
        spec = _spec()
        a = _scaleout_cell(2, "QUTS", spec, 7, 1, QCFactory.balanced(),
                           1, None, False)
        b = _scaleout_cell(2, "QUTS", spec, 8, 2, QCFactory.balanced(),
                           1, None, False)
        assert _digest_bytes(a) != _digest_bytes(b)

    def test_sweep_rows_identical_across_workers(self):
        rows_seq = shard_sweep(
            ExperimentConfig(scale="smoke", workers=1),
            shard_counts=(1, 2), spec=_spec(6_000.0))
        rows_par = shard_sweep(
            ExperimentConfig(scale="smoke", workers=2),
            shard_counts=(1, 2), spec=_spec(6_000.0))
        assert rows_seq == rows_par
