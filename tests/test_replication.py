"""Tests for the multi-seed replication harness."""

import pytest

from repro.experiments.replication import (MetricSummary, compare_policies,
                                           replicate)
from repro.qc.generator import QCFactory
from repro.workload.synthetic import WorkloadSpec


class TestMetricSummary:
    def test_mean_and_stdev(self):
        summary = MetricSummary("m", (1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.stdev == pytest.approx(1.0)
        assert summary.n == 3

    def test_single_sample_no_spread(self):
        summary = MetricSummary("m", (5.0,))
        assert summary.stdev == 0.0
        assert summary.ci95 == (5.0, 5.0)

    def test_ci_contains_mean(self):
        summary = MetricSummary("m", (1.0, 2.0, 3.0, 4.0))
        lo, hi = summary.ci95
        assert lo <= summary.mean <= hi

    def test_overlap_detection(self):
        tight_low = MetricSummary("a", (1.0, 1.01, 0.99))
        tight_high = MetricSummary("b", (2.0, 2.01, 1.99))
        wide = MetricSummary("c", (0.0, 3.0))
        assert not tight_low.overlaps(tight_high)
        assert tight_low.overlaps(wide)
        assert tight_high.overlaps(wide)

    def test_row_rendering(self):
        row = MetricSummary("m", (1.0, 3.0)).row()
        assert row["metric"] == "m"
        assert row["n"] == 2


class TestReplicate:
    @pytest.fixture(scope="class")
    def light_spec(self):
        # A light 8 s workload keeps replication tests fast.
        return WorkloadSpec(query_rate_per_s=10.0, update_rate_per_s=40.0,
                            crowds_per_5min=0.0).scaled(8_000.0)

    def test_replicate_runs_n_seeds(self, light_spec):
        summary = replicate("QH", QCFactory.balanced, n_seeds=3,
                            duration_ms=8_000.0,
                            metrics=("total%", "rt_ms"), spec=light_spec)
        assert summary["total%"].n == 3
        assert summary["rt_ms"].n == 3
        assert 0.0 <= summary["total%"].mean <= 1.0

    def test_seeds_vary_results(self, light_spec):
        summary = replicate("QH", QCFactory.balanced, n_seeds=3,
                            duration_ms=8_000.0, spec=light_spec)
        # Independent workloads: not all samples identical.
        assert len(set(summary["total%"].samples)) > 1

    def test_deterministic_given_base_seed(self, light_spec):
        a = replicate("QH", QCFactory.balanced, n_seeds=2,
                      duration_ms=8_000.0, spec=light_spec, base_seed=7)
        b = replicate("QH", QCFactory.balanced, n_seeds=2,
                      duration_ms=8_000.0, spec=light_spec, base_seed=7)
        assert a["total%"].samples == b["total%"].samples

    def test_unknown_metric_rejected(self, light_spec):
        with pytest.raises(KeyError):
            replicate("QH", QCFactory.balanced, n_seeds=1,
                      metrics=("latency",), spec=light_spec)

    def test_zero_seeds_rejected(self, light_spec):
        with pytest.raises(ValueError):
            replicate("QH", QCFactory.balanced, n_seeds=0,
                      spec=light_spec)

    def test_compare_policies_common_seeds(self, light_spec):
        comparison = compare_policies(("QH", "UH"), QCFactory.balanced,
                                      n_seeds=2, duration_ms=8_000.0,
                                      spec=light_spec)
        assert set(comparison) == {"QH", "UH"}
        for summary in comparison.values():
            assert summary.n == 2
