"""Tests for the fault-injection subsystem and degraded operation.

Covers the fault plans/injector, the replica crash/recovery lifecycle,
query failover accounting, overload shedding, and the trace/config
validation added alongside them.
"""

import pytest

from repro.cluster import (HedgedRouter, NoHealthyReplica, QCAwareRouter,
                           ReplicatedPortal, RoundRobinRouter,
                           run_cluster_simulation)
from repro.db.admission import OverloadShedding
from repro.db.server import ServerConfig
from repro.db.transactions import Query, TxnStatus
from repro.faults import (CRASH, RECOVER, SPIKE_START, FaultEvent,
                          FaultInjector, FaultPlan)
from repro.qc.contracts import QualityContract
from repro.qc.generator import QCFactory
from repro.scheduling import make_qh
from repro.scheduling.quts import QUTSScheduler
from repro.sim import Environment
from repro.sim.rng import StreamRegistry
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec
from repro.workload.traces import QueryRecord, UpdateRecord


def step_query(qosmax=10.0, qodmax=10.0, at=0.0, exec_ms=7.0,
               lifetime=150_000.0):
    return Query(at, exec_ms, ("A",),
                 QualityContract.step(qosmax, 50.0, qodmax, 1.0,
                                      lifetime=lifetime))


def balance_holds(counters) -> bool:
    """Every submitted contract reaches exactly one terminal outcome."""
    return counters.get("queries_submitted", 0) == (
        counters.get("queries_committed", 0)
        + counters.get("queries_dropped_lifetime", 0)
        + counters.get("queries_unfinished", 0)
        + counters.get("queries_lost_crash", 0))


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "meteor")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, CRASH, replica=0)

    def test_crash_needs_replica(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, CRASH)

    def test_stall_must_not_name_replica(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "stall_updates", replica=1)

    def test_spike_magnitude_below_one_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, SPIKE_START, magnitude=0.5)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan([FaultEvent(50.0, RECOVER, replica=0),
                          FaultEvent(10.0, CRASH, replica=0)])
        assert [e.at_ms for e in plan] == [10.0, 50.0]

    def test_none_plan_is_empty(self):
        assert len(FaultPlan.none()) == 0
        assert FaultPlan.none().max_replica == -1

    def test_replica_crash_pairs_crash_with_recovery(self):
        plan = FaultPlan.replica_crash(1, at_ms=100.0, down_ms=40.0)
        kinds = [(e.at_ms, e.kind, e.replica) for e in plan]
        assert kinds == [(100.0, CRASH, 1), (140.0, RECOVER, 1)]
        assert plan.max_replica == 1

    @pytest.mark.parametrize("factory", [
        lambda: FaultPlan.replica_crash(0, 10.0, -1.0),
        lambda: FaultPlan.update_stall(10.0, 0.0),
        lambda: FaultPlan.load_spike(10.0, -5.0),
    ])
    def test_nonpositive_durations_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()

    def test_merged_combines_and_resorts(self):
        merged = FaultPlan.replica_crash(0, 100.0, 50.0).merged(
            FaultPlan.update_stall(20.0, 30.0))
        assert len(merged) == 4
        assert [e.at_ms for e in merged] == sorted(
            e.at_ms for e in merged)

    def test_sample_mtbf_deterministic(self):
        plans = [FaultPlan.sample_mtbf(
            StreamRegistry(7).stream("faults"), n_replicas=3,
            mttf_ms=5_000.0, mttr_ms=500.0, horizon_ms=60_000.0)
            for __ in range(2)]
        assert plans[0].events == plans[1].events
        assert len(plans[0]) > 0

    def test_sample_mtbf_alternates_per_replica(self):
        plan = FaultPlan.sample_mtbf(
            StreamRegistry(7).stream("faults"), n_replicas=2,
            mttf_ms=3_000.0, mttr_ms=400.0, horizon_ms=60_000.0)
        for replica in (0, 1):
            kinds = [e.kind for e in sorted(plan.events,
                                            key=lambda e: e.at_ms)
                     if e.replica == replica]
            assert kinds == [CRASH, RECOVER] * (len(kinds) // 2) \
                + ([CRASH] if len(kinds) % 2 else [])
        assert all(0.0 <= e.at_ms < 60_000.0 for e in plan)

    def test_sample_mtbf_validation(self):
        rng = StreamRegistry(0).stream("x")
        with pytest.raises(ValueError):
            FaultPlan.sample_mtbf(rng, 0, 1.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            FaultPlan.sample_mtbf(rng, 1, 1.0, 1.0, 0.0)


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
class _RawTrace:
    """A trace-shaped object whose records are NOT re-sorted."""

    def __init__(self, queries, updates, duration_ms):
        self.queries = queries
        self.updates = updates
        self.duration_ms = duration_ms
        self.name = "raw"


def small_trace(seed=11, duration=15_000.0):
    return StockWorkloadGenerator(WorkloadSpec().scaled(duration),
                                  master_seed=seed).generate()


def make_portal(env, n=2, **kwargs):
    return ReplicatedPortal(env, n, make_qh, StreamRegistry(0), **kwargs)


class TestInjector:
    def test_plan_beyond_cluster_rejected(self):
        env = Environment()
        portal = make_portal(env, n=2)
        with pytest.raises(ValueError):
            FaultInjector(env, FaultPlan.replica_crash(5, 10.0, 10.0),
                          portal)

    def test_scripted_crash_and_recovery_fire_on_time(self):
        env = Environment()
        portal = make_portal(env, n=2)
        injector = FaultInjector(
            env, FaultPlan.replica_crash(0, 100.0, 50.0), portal)
        env.run(until=99.0)
        assert portal.replicas[0].up
        env.run(until=101.0)
        assert not portal.replicas[0].up
        env.run(until=200.0)
        assert portal.replicas[0].up
        assert injector.fired == {CRASH: 1, RECOVER: 1}
        assert portal.replicas[0].crash_count == 1
        assert portal.replicas[0].downtime_ms == pytest.approx(50.0)

    def test_spike_controls_clone_count(self):
        env = Environment()
        portal = make_portal(env, n=1)
        injector = FaultInjector(
            env, FaultPlan.load_spike(10.0, 20.0, magnitude=3.0), portal)
        assert injector.extra_query_copies() == 0
        env.run(until=15.0)
        assert injector.query_multiplier == 3.0
        assert injector.extra_query_copies() == 2
        env.run(until=40.0)
        assert injector.extra_query_copies() == 0

    def test_zero_fault_plan_reproduces_seed_results_exactly(self):
        trace = small_trace()
        plain = run_cluster_simulation(2, QUTSScheduler, trace,
                                       QCFactory.balanced(), master_seed=1)
        gated = run_cluster_simulation(2, QUTSScheduler, trace,
                                       QCFactory.balanced(), master_seed=1,
                                       fault_plan=FaultPlan.none())
        assert gated.total_percent == plain.total_percent
        assert gated.qos_percent == plain.qos_percent
        assert gated.qod_percent == plain.qod_percent
        assert gated.counters == plain.counters
        assert gated.downtime_ms == 0.0
        assert gated.availability == 1.0


# ----------------------------------------------------------------------
# Crash / recovery lifecycle through the portal
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_routing_avoids_dead_replica(self):
        env = Environment()
        portal = make_portal(env, n=2)
        picks = []

        def scenario(env):
            portal.crash_replica(0)
            for __ in range(4):
                picks.append(portal.submit_query(step_query(at=env.now)))
                yield env.timeout(1.0)

        env.process(scenario(env))
        env.run(until=500.0)
        assert picks == [1, 1, 1, 1]

    def test_crashed_replica_misses_broadcasts_then_resyncs(self):
        env = Environment()
        portal = make_portal(env, n=2)

        def scenario(env):
            portal.crash_replica(1)
            portal.broadcast_update(env.now, 2.0, "IBM", value=7.0)
            yield env.timeout(50.0)
            portal.recover_replica(1)
            yield env.timeout(0.0)

        env.process(scenario(env))
        env.run(until=500.0)
        # Both replicas converge: live one applied it on arrival, the
        # crashed one replayed it from the missed-update log.
        for replica in portal.replicas:
            assert replica.server.database.read("IBM") == 7.0
        counters = portal.counters()
        assert counters["updates_resynced"] == 1
        assert counters["replica_crashes"] == 1
        assert counters["replica_recoveries"] == 1

    def test_crash_strands_running_query_and_fails_over(self):
        env = Environment()
        portal = make_portal(env, n=2, router=RoundRobinRouter())

        def scenario(env):
            portal.submit_query(step_query(exec_ms=20.0))
            yield env.timeout(5.0)  # mid-execution on replica 0
            portal.crash_replica(0)

        env.process(scenario(env))
        env.run(until=5_000.0)
        portal.finalize()
        counters = portal.counters()
        assert counters["queries_failed_over"] == 1
        assert counters["query_retries"] == 1
        assert counters["queries_committed"] == 1
        assert balance_holds(counters)
        # The contract was priced exactly once, into replica 0's ledger.
        assert portal.replicas[0].ledger.total_max > 0
        assert portal.replicas[1].ledger.total_max == 0

    def test_lost_query_stays_in_denominator(self):
        env = Environment()
        portal = make_portal(env, n=1, failover_retries=2,
                             failover_backoff_ms=1.0)
        queries = [step_query(exec_ms=20.0)]

        def scenario(env):
            portal.submit_query(queries[0])
            yield env.timeout(5.0)
            portal.crash_replica(0)  # never recovers

        env.process(scenario(env))
        env.run(until=5_000.0)
        portal.finalize()
        counters = portal.counters()
        assert counters["queries_lost_crash"] == 1
        assert counters.get("queries_committed", 0) == 0
        assert balance_holds(counters)
        assert queries[0].status is TxnStatus.LOST_CRASH
        # Lost, not vanished: the maxima still weigh the percentage down.
        assert portal.total_max > 0
        assert portal.total_percent == 0.0

    def test_all_down_arrival_strands_then_adopts_on_recovery(self):
        env = Environment()
        portal = make_portal(env, n=1, failover_backoff_ms=10.0)

        def scenario(env):
            portal.crash_replica(0)
            assert portal.submit_query(step_query(at=env.now)) == -1
            yield env.timeout(25.0)
            portal.recover_replica(0)

        env.process(scenario(env))
        env.run(until=5_000.0)
        portal.finalize()
        counters = portal.counters()
        assert counters["queries_stranded_arrival"] == 1
        assert counters["query_retries"] == 1
        assert counters["queries_committed"] == 1
        assert balance_holds(counters)

    def test_crash_and_recover_are_idempotent(self):
        env = Environment()
        portal = make_portal(env, n=2)

        def scenario(env):
            portal.crash_replica(0)
            portal.crash_replica(0)
            yield env.timeout(10.0)
            portal.recover_replica(0)
            portal.recover_replica(0)

        env.process(scenario(env))
        env.run(until=100.0)
        counters = portal.counters()
        assert counters["replica_crashes"] == 1
        assert counters["replica_recoveries"] == 1
        assert portal.replicas[0].downtime_ms == pytest.approx(10.0)

    def test_submit_to_crashed_server_raises(self):
        env = Environment()
        portal = make_portal(env, n=1)
        portal.crash_replica(0)
        with pytest.raises(RuntimeError):
            portal.replicas[0].server.submit_query(step_query())


class TestRunnerUnderFaults:
    def test_crash_mid_trace_completes_and_balances(self):
        trace = small_trace()
        plan = FaultPlan.replica_crash(0, at_ms=4_000.0, down_ms=3_000.0)
        result = run_cluster_simulation(2, QUTSScheduler, trace,
                                        QCFactory.balanced(), master_seed=1,
                                        router=HedgedRouter(),
                                        fault_plan=plan)
        c = result.counters
        spikes = 0  # no spike events in this plan
        assert c["queries_submitted"] == len(trace.queries) + spikes
        assert balance_holds(c)
        assert c["replica_crashes"] == 1
        assert c["replica_recoveries"] == 1
        assert result.crash_counts == [1, 0]
        assert result.downtime_ms == pytest.approx(3_000.0)
        assert 0.0 < result.availability < 1.0
        assert 0.0 <= result.total_percent <= 1.0

    def test_update_stall_bursts_and_preserves_final_state(self):
        trace = small_trace()
        plan = FaultPlan.update_stall(3_000.0, 5_000.0)
        result = run_cluster_simulation(1, QUTSScheduler, trace,
                                        QCFactory.balanced(), master_seed=1,
                                        fault_plan=plan)
        c = result.counters
        updates = (c.get("updates_applied", 0)
                   + c.get("updates_superseded", 0)
                   + c.get("updates_unfinished", 0))
        assert updates == len(trace.updates)
        assert balance_holds(c)

    def test_load_spike_multiplies_submissions(self):
        trace = small_trace()
        plan = FaultPlan.load_spike(0.0, trace.duration_ms, magnitude=2.0)
        result = run_cluster_simulation(1, QUTSScheduler, trace,
                                        QCFactory.balanced(), master_seed=1,
                                        fault_plan=plan)
        c = result.counters
        assert c["queries_submitted"] == 2 * len(trace.queries)
        assert balance_holds(c)

    def test_non_monotonic_query_trace_rejected(self):
        # Trace itself sorts records, so corruption can only arrive via a
        # trace-shaped stand-in (a hand-rolled loader, a buggy mutation).
        trace = _RawTrace(
            queries=[QueryRecord(100.0, ("A",), 5.0),
                     QueryRecord(50.0, ("A",), 5.0)],
            updates=[], duration_ms=200.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            run_cluster_simulation(1, QUTSScheduler, trace,
                                   QCFactory.balanced(), master_seed=1)

    def test_non_monotonic_update_trace_rejected(self):
        trace = _RawTrace(
            queries=[],
            updates=[UpdateRecord(100.0, "A", 2.0, value=1.0),
                     UpdateRecord(99.0, "A", 2.0, value=2.0)],
            duration_ms=200.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            run_cluster_simulation(1, QUTSScheduler, trace,
                                   QCFactory.balanced(), master_seed=1)


# ----------------------------------------------------------------------
# Hedged routing
# ----------------------------------------------------------------------
class _Stub:
    def __init__(self, pending_q, up=True):
        self._q = pending_q
        self.up = up

    def pending_queries(self):
        return self._q

    def pending_updates(self):
        return 0


class TestHedgedRouter:
    def test_primary_choice_delegates_to_inner(self):
        router = HedgedRouter(inner=QCAwareRouter())
        replicas = [_Stub(5), _Stub(1)]
        assert router.choose(step_query(qosmax=99.0, qodmax=1.0),
                             replicas) == 1
        assert router.name == "hedged(qc-aware)"

    def test_backup_is_least_loaded_other_replica(self):
        router = HedgedRouter()
        replicas = [_Stub(0), _Stub(9), _Stub(2)]
        assert router.choose_backup(step_query(), replicas, primary=0) == 2

    def test_backup_skips_dead_replicas(self):
        router = HedgedRouter()
        replicas = [_Stub(0), _Stub(1, up=False), _Stub(9)]
        assert router.choose_backup(step_query(), replicas, primary=0) == 2

    def test_no_backup_when_primary_is_only_healthy(self):
        router = HedgedRouter()
        replicas = [_Stub(0), _Stub(1, up=False)]
        assert router.choose_backup(step_query(), replicas,
                                    primary=0) is None

    def test_hedged_failover_skips_backoff(self):
        env = Environment()
        portal = make_portal(env, n=2, router=HedgedRouter(),
                             failover_backoff_ms=10_000.0)

        def scenario(env):
            portal.submit_query(step_query(exec_ms=20.0))
            yield env.timeout(5.0)
            portal.crash_replica(0)

        env.process(scenario(env))
        # Far too short for even one 10 s backoff period: commits anyway
        # because the hedge resubmits to the backup immediately.
        env.run(until=200.0)
        assert portal.counters()["queries_committed"] == 1


# ----------------------------------------------------------------------
# Overload shedding
# ----------------------------------------------------------------------
class _SchedulerStub:
    def __init__(self):
        self.backlog = 0

    def pending_queries(self):
        return self.backlog


class _ServerStub:
    def __init__(self):
        self.scheduler = _SchedulerStub()


class TestOverloadShedding:
    @pytest.mark.parametrize("kwargs", [
        {"high_watermark": 0},
        {"high_watermark": 10, "low_watermark": 10},
        {"low_watermark": -1},
        {"shed_quantile": 1.5},
        {"window": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OverloadShedding(**kwargs)

    def test_hysteresis_enters_high_leaves_low(self):
        policy = OverloadShedding(high_watermark=10, low_watermark=4)
        server = _ServerStub()
        rich = step_query(qosmax=100.0, qodmax=100.0)
        server.scheduler.backlog = 9
        assert policy.admit(rich, server) and not policy.is_shedding
        server.scheduler.backlog = 10
        policy.admit(rich, server)
        assert policy.is_shedding
        # Between the watermarks the mode sticks (no flapping).
        server.scheduler.backlog = 7
        policy.admit(rich, server)
        assert policy.is_shedding
        server.scheduler.backlog = 4
        policy.admit(rich, server)
        assert not policy.is_shedding
        assert policy.mode_changes == [1, 1]

    def test_sheds_lowest_value_contracts_first(self):
        policy = OverloadShedding(high_watermark=5, low_watermark=1,
                                  shed_quantile=0.5)
        server = _ServerStub()
        # Teach the sketch the value distribution while under water.
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0):
            policy.admit(step_query(qosmax=value, qodmax=0.0), server)
        server.scheduler.backlog = 50
        cheap = step_query(qosmax=1.0, qodmax=0.0)
        rich = step_query(qosmax=8.0, qodmax=0.0)
        assert not policy.admit(cheap, server)
        assert policy.admit(rich, server)

    def test_shed_queries_counted_in_ledger(self):
        from repro.db.database import Database
        from repro.db.server import DatabaseServer
        from repro.metrics.profit import ProfitLedger

        env = Environment()
        ledger = ProfitLedger()
        server = DatabaseServer(env, Database(), make_qh(), ledger,
                                StreamRegistry(0),
                                admission=OverloadShedding(
                                    high_watermark=1, low_watermark=0,
                                    shed_quantile=1.0))

        def scenario(env):
            # Saturate: second arrival sees backlog >= 1 -> shedding.
            # The last arrival is a bargain-bin contract, well below the
            # quantile threshold learned from the first two.
            server.submit_query(step_query(exec_ms=500.0))
            server.submit_query(step_query(exec_ms=500.0))
            server.submit_query(step_query(qosmax=0.1, qodmax=0.1,
                                           exec_ms=500.0))
            yield env.timeout(0.0)

        env.process(scenario(env))
        env.run(until=10.0)
        counters = ledger.counters.as_dict()
        assert counters.get("queries_shed", 0) >= 1
        assert counters["queries_shed"] <= counters["queries_rejected"]


# ----------------------------------------------------------------------
# ServerConfig validation (satellite)
# ----------------------------------------------------------------------
class TestServerConfigValidation:
    def test_negative_class_switch_overhead_rejected(self):
        with pytest.raises(ValueError, match="class_switch_overhead"):
            ServerConfig(class_switch_overhead=-1.0)

    def test_negative_queue_sample_every_rejected(self):
        with pytest.raises(ValueError, match="queue_sample_every"):
            ServerConfig(queue_sample_every=-5.0)


# ----------------------------------------------------------------------
# Router failure-awareness (the portal-independent contract)
# ----------------------------------------------------------------------
class TestFailureAwareRouting:
    @pytest.mark.parametrize("router_factory", [
        RoundRobinRouter, QCAwareRouter, HedgedRouter])
    def test_all_dead_raises(self, router_factory):
        replicas = [_Stub(0, up=False), _Stub(0, up=False)]
        with pytest.raises(NoHealthyReplica):
            router_factory().choose(step_query(), replicas)

    def test_round_robin_skips_dead_without_losing_cycle(self):
        router = RoundRobinRouter()
        replicas = [_Stub(0), _Stub(0, up=False), _Stub(0)]
        picks = [router.choose(step_query(), replicas) for __ in range(4)]
        assert picks == [0, 2, 0, 2]
