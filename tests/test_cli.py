"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_accepted(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_option(self):
        args = build_parser().parse_args(["fig1", "--scale", "smoke"])
        assert args.scale == "smoke"

    def test_policy_and_seed_options(self):
        args = build_parser().parse_args(
            ["run", "--policy", "UH", "--seed", "42"])
        assert args.policy == "UH"
        assert args.seed == 42


class TestMain:
    def test_table4_prints_grid(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "$90 ~ $99" in out

    def test_table3_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "query execution time" in out
        assert "5 ~ 9ms" in out

    def test_run_smoke(self, capsys):
        assert main(["run", "--scale", "smoke", "--policy", "QH"]) == 0
        out = capsys.readouterr().out
        assert "QH" in out
        assert "queries_committed" in out

    def test_fig5_smoke(self, capsys):
        assert main(["fig5", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "queries per second" in out
        assert "updates per second" in out

    def test_ablation_which_option(self):
        args = build_parser().parse_args(["ablation", "--which",
                                          "invalidation"])
        assert args.which == "invalidation"

    def test_ablation_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "--which", "everything"])

    def test_export_fig1(self, tmp_path, capsys):
        assert main(["export", "--scale", "smoke", "--figures", "fig1",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        csv_text = (tmp_path / "fig1.csv").read_text()
        assert csv_text.startswith("policy,response_time_ms,staleness_uu")
        assert "FIFO-UH" in csv_text

    def test_export_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["export", "--figures", "fig99", "--out", str(tmp_path)])


class TestChaosCommand:
    """``repro chaos`` dispatches before the experiment parser and owns
    its own grammar + exit-code contract."""

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--help"])
        assert excinfo.value.code == 0
        assert "shrink" in capsys.readouterr().out

    def test_no_policies_exits_two(self, capsys):
        assert main(["chaos", "--policies", ""]) == 2
        assert "no policies" in capsys.readouterr().out

    def test_clean_search_exits_zero(self, tmp_path, capsys):
        code = main(["chaos", "--seeds", "1", "--policies", "QUTS",
                     "--scale", "smoke", "--horizon-ms", "6000",
                     "--replicas", "2", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        assert list(tmp_path.glob("*.json")) == []

    def test_planted_bug_meta_run_exits_zero_when_caught(self, tmp_path,
                                                         capsys):
        code = main(["chaos", "--seeds", "1", "--policies", "QUTS",
                     "--scale", "smoke", "--horizon-ms", "6000",
                     "--replicas", "2", "--shrink-budget", "8",
                     "--planted-bug", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "planted bug caught" in out
        assert list(tmp_path.glob("chaos_repro_*.json"))


class TestSanitizeCommand:
    """``repro sanitize`` dispatches before the experiment parser;
    the heavy dynamic cells are covered by tests/test_sanitizer.py, so
    here only the dispatch + the fast static meta-runs are exercised."""

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sanitize", "--help"])
        assert excinfo.value.code == 0
        assert "perturb" in capsys.readouterr().out

    def test_planted_set_iter_meta_run(self, capsys):
        assert main(["sanitize", "--planted-bug", "set-iter"]) == 0
        out = capsys.readouterr().out
        assert "no-set-iteration" in out
        assert "planted" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["sanitize", "fig99", "--skip-static"]) == 2
        assert "fig99" in capsys.readouterr().err
