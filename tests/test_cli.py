"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_accepted(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_option(self):
        args = build_parser().parse_args(["fig1", "--scale", "smoke"])
        assert args.scale == "smoke"

    def test_policy_and_seed_options(self):
        args = build_parser().parse_args(
            ["run", "--policy", "UH", "--seed", "42"])
        assert args.policy == "UH"
        assert args.seed == 42


class TestMain:
    def test_table4_prints_grid(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "$90 ~ $99" in out

    def test_table3_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "query execution time" in out
        assert "5 ~ 9ms" in out

    def test_run_smoke(self, capsys):
        assert main(["run", "--scale", "smoke", "--policy", "QH"]) == 0
        out = capsys.readouterr().out
        assert "QH" in out
        assert "queries_committed" in out

    def test_fig5_smoke(self, capsys):
        assert main(["fig5", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "queries per second" in out
        assert "updates per second" in out

    def test_ablation_which_option(self):
        args = build_parser().parse_args(["ablation", "--which",
                                          "invalidation"])
        assert args.which == "invalidation"

    def test_ablation_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "--which", "everything"])

    def test_export_fig1(self, tmp_path, capsys):
        assert main(["export", "--scale", "smoke", "--figures", "fig1",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        csv_text = (tmp_path / "fig1.csv").read_text()
        assert csv_text.startswith("policy,response_time_ms,staleness_uu")
        assert "FIFO-UH" in csv_text

    def test_export_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["export", "--figures", "fig99", "--out", str(tmp_path)])
