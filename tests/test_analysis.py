"""Tests for ``repro.analysis`` — the simlint determinism linter.

Every rule gets the same treatment: a fixture that must fire, a
near-miss that must stay quiet, and a suppressed variant via
``# repro: lint-ignore[rule-id]``.  A meta-test then runs the linter
over this repository itself and requires a clean bill.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.analysis import (EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
                            Finding, LintConfig, lint_paths, main,
                            render_json, render_sarif, render_text)
from repro.analysis.core import (LintUsageError, ProjectGraph, Rule,
                                 SourceModule, apply_rules,
                                 find_project_root)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Default fixture location: inside the hot-path scope so that every
#: rule (including the scoped ones) is live.
HOT_RELPATH = "src/repro/sim/fixture_mod.py"


def lint_snippet(tmp_path, code, relpath=HOT_RELPATH, select=(),
                 extra=()):
    """Write ``code`` at ``relpath`` under a scratch root and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    for other_relpath, other_code in extra:
        other = tmp_path / other_relpath
        other.parent.mkdir(parents=True, exist_ok=True)
        other.write_text(textwrap.dedent(other_code))
    config = LintConfig(select=tuple(select))
    return lint_paths([tmp_path], config=config, root=tmp_path)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
class TestNoWallClock:
    def test_fires_on_time_time(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            t0 = time.time()
            """, select=["no-wall-clock"])
        assert rule_ids(findings) == ["no-wall-clock"]
        assert findings[0].line == 2

    def test_fires_on_from_import_and_use(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from time import perf_counter
            t0 = perf_counter()
            """, select=["no-wall-clock"])
        assert rule_ids(findings) == ["no-wall-clock"] * 2

    def test_fires_on_aliased_datetime_now(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import datetime as dt
            stamp = dt.datetime.now()
            """, select=["no-wall-clock"])
        assert rule_ids(findings) == ["no-wall-clock"]

    def test_quiet_on_simulated_clock_and_lookalikes(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def run(env, server):
                t = env.now
                d = server.time()   # not the stdlib time module
                return t, d
            """, select=["no-wall-clock"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            t0 = time.time()  # repro: lint-ignore[no-wall-clock] bench
            """, select=["no-wall-clock"])
        assert findings == []

    def test_fires_in_serve_path_outside_clock_module(self, tmp_path):
        # The live serving stack has a legal host clock, but only inside
        # repro.serve.clock — elsewhere the rule fires with a message
        # pointing at the MonotonicClock abstraction.
        findings = lint_snippet(tmp_path, """\
            import time
            t0 = time.monotonic()
            """, relpath="src/repro/serve/gateway_probe.py",
            select=["no-wall-clock"])
        assert rule_ids(findings) == ["no-wall-clock"]
        assert "MonotonicClock" in findings[0].message

    def test_quiet_in_the_serve_clock_module(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            t0 = time.monotonic()
            """, relpath="src/repro/serve/clock.py",
            select=["no-wall-clock"])
        assert findings == []

    def test_suppressed_in_serve_path(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            t0 = time.monotonic()  # repro: lint-ignore[no-wall-clock] x
            """, relpath="src/repro/serve/loop_probe.py",
            select=["no-wall-clock"])
        assert findings == []


# ----------------------------------------------------------------------
class TestNoGlobalRng:
    def test_fires_on_random_import_and_draw(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import random
            x = random.random()
            """, select=["no-global-rng"])
        assert rule_ids(findings) == ["no-global-rng"] * 2

    def test_fires_on_numpy_random_alias(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import numpy as np
            v = np.random.rand(3)
            """, select=["no-global-rng"])
        assert rule_ids(findings) == ["no-global-rng"]

    def test_quiet_on_stream_registry(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.sim.rng import StreamRegistry

            def draw(master_seed):
                rng = StreamRegistry(master_seed).stream("queries")
                return rng.exponential(10.0)
            """, select=["no-global-rng"])
        assert findings == []

    def test_rng_module_itself_is_exempt(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import random

            class Stream(random.Random):
                pass
            """, relpath="src/repro/sim/rng.py",
            select=["no-global-rng"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            # repro: lint-ignore[no-global-rng] seeding docs example
            import random
            """, select=["no-global-rng"])
        assert findings == []


# ----------------------------------------------------------------------
class TestPicklableTasks:
    def test_fires_on_lambda_task(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.parallel import Task
            t = Task(lambda: 1, key="bad")
            """, select=["picklable-tasks"])
        assert rule_ids(findings) == ["picklable-tasks"]
        assert "lambda" in findings[0].message

    def test_fires_on_nested_function(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.parallel import Task

            def sweep():
                def inner(seed):
                    return seed
                return [Task(inner, (s,)) for s in range(3)]
            """, select=["picklable-tasks"])
        assert rule_ids(findings) == ["picklable-tasks"]
        assert "inner" in findings[0].message

    def test_fires_on_lambda_inside_run_tasks(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.parallel import run_tasks

            def sweep(tasks):
                return run_tasks([t.replace(fn=lambda: 0)
                                  for t in tasks])
            """, select=["picklable-tasks"])
        assert rule_ids(findings) == ["picklable-tasks"]

    def test_quiet_on_module_level_function(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.parallel import Task, run_tasks

            def job(seed):
                return seed * 2

            def sweep():
                return run_tasks([Task(job, (s,)) for s in range(3)])
            """, select=["picklable-tasks"])
        assert findings == []

    def test_quiet_on_unrelated_task_class(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            class Task:
                def __init__(self, fn):
                    self.fn = fn

            t = Task(lambda: 1)
            """, select=["picklable-tasks"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.parallel import Task
            t = Task(lambda: 1)  # repro: lint-ignore[picklable-tasks]
            """, select=["picklable-tasks"])
        assert findings == []


# ----------------------------------------------------------------------
class TestSlotsHygiene:
    BASE = """\
        class Event:
            __slots__ = ("env", "callbacks")
        """

    def test_fires_on_unslotted_subclass(self, tmp_path):
        findings = lint_snippet(tmp_path, self.BASE + """\

            class Timeout(Event):
                pass
            """, select=["slots-hygiene"])
        assert rule_ids(findings) == ["slots-hygiene"]
        assert "Timeout" in findings[0].message

    def test_fires_across_modules(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.sim.base_fixture import Event

            class Timeout(Event):
                pass
            """, select=["slots-hygiene"],
            extra=[("src/repro/sim/base_fixture.py", self.BASE)])
        assert rule_ids(findings) == ["slots-hygiene"]

    def test_fires_on_class_level_mutable_default(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            class Queue:
                __slots__ = ("items",)
                shared_cache = {}
            """, select=["slots-hygiene"])
        assert rule_ids(findings) == ["slots-hygiene"]
        assert "shared_cache" in findings[0].message

    def test_quiet_on_slotted_subclass_and_tuples(self, tmp_path):
        findings = lint_snippet(tmp_path, self.BASE + """\

            class Timeout(Event):
                __slots__ = ("delay",)
                KINDS = ("soft", "hard")
            """, select=["slots-hygiene"])
        assert findings == []

    def test_out_of_scope_path_is_quiet(self, tmp_path):
        findings = lint_snippet(tmp_path, self.BASE + """\

            class Timeout(Event):
                pass
            """, relpath="src/repro/experiments/fixture_mod.py",
            select=["slots-hygiene"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, self.BASE + """\

            # repro: lint-ignore[slots-hygiene] debug-only subclass
            class Traced(Event):
                pass
            """, select=["slots-hygiene"])
        assert findings == []


# ----------------------------------------------------------------------
class TestNoFloatEqOnClock:
    def test_fires_on_eq(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def fire(env, deadline):
                return env.now == deadline
            """, select=["no-float-eq-on-clock"])
        assert rule_ids(findings) == ["no-float-eq-on-clock"]

    def test_fires_on_ne_reversed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def fire(env, deadline):
                return deadline != env.now
            """, select=["no-float-eq-on-clock"])
        assert rule_ids(findings) == ["no-float-eq-on-clock"]

    def test_quiet_on_ordering(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def fire(env, deadline):
                return env.now >= deadline and env.nowhere == 3
            """, select=["no-float-eq-on-clock"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def fire(env):
                return env.now == 0.0  # repro: lint-ignore[no-float-eq-on-clock]
            """, select=["no-float-eq-on-clock"])
        assert findings == []


# ----------------------------------------------------------------------
class TestExceptionHygiene:
    def test_fires_on_bare_except(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            try:
                step()
            except:
                recover()
            """, select=["exception-hygiene"])
        assert rule_ids(findings) == ["exception-hygiene"]

    def test_fires_on_broad_pass_in_hot_path(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            try:
                step()
            except Exception:
                pass
            """, relpath="src/repro/db/fixture_mod.py",
            select=["exception-hygiene"])
        assert rule_ids(findings) == ["exception-hygiene"]

    def test_quiet_on_narrow_handler_and_cold_path(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            try:
                step()
            except ValueError:
                pass
            except Exception as exc:
                log(exc)
                raise
            """, select=["exception-hygiene"])
        assert findings == []
        # Broad except-and-pass is tolerated outside the hot paths.
        findings = lint_snippet(tmp_path, """\
            try:
                step()
            except Exception:
                pass
            """, relpath="examples/fixture_mod.py",
            select=["exception-hygiene"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            try:
                step()
            except:  # repro: lint-ignore[exception-hygiene] REPL shim
                recover()
            """, select=["exception-hygiene"])
        assert findings == []


# ----------------------------------------------------------------------
class TestFramework:
    def test_bare_lint_ignore_suppresses_all_rules(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            import random
            t = time.time()  # repro: lint-ignore
            """)
        assert rule_ids(findings) == ["no-global-rng"]

    def test_allowlist_waives_rule_for_path(self, tmp_path):
        target = tmp_path / "bench" / "speed.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nt = time.time()\n")
        config = LintConfig(
            allow={"no-wall-clock": ("bench/speed.py",)})
        findings = lint_paths([tmp_path], config=config,
                              root=tmp_path)
        assert findings == []

    def test_allowlist_loaded_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.repro.lint]
            exclude = ["skipme"]

            [tool.repro.lint.allow]
            no-wall-clock = ["bench"]
            """))
        bench = tmp_path / "bench" / "speed.py"
        bench.parent.mkdir()
        bench.write_text("import time\nt = time.time()\n")
        skipped = tmp_path / "skipme" / "junk.py"
        skipped.parent.mkdir()
        skipped.write_text("import random\n")
        findings = lint_paths([tmp_path])
        assert findings == []

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([tmp_path], config=LintConfig(),
                              root=tmp_path)
        assert rule_ids(findings) == ["syntax-error"]

    def test_unknown_rule_id_rejected(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path],
                       config=LintConfig(select=("no-such-rule",)),
                       root=tmp_path)

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path / "nope"], config=LintConfig(),
                       root=tmp_path)

    def test_findings_sorted_and_formatted(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import random
            import time
            t = time.time()
            """)
        assert findings == sorted(findings)
        text = findings[0].format()
        assert text.startswith(f"{HOT_RELPATH}:1:1: no-global-rng")

    def test_find_project_root_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro.lint]\n")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path

    def test_render_json_round_trips(self, tmp_path):
        findings = [Finding("a.py", 3, 1, "no-wall-clock", "boom")]
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["line"] == 3
        assert "1 finding(s)" in render_text(findings)


# ----------------------------------------------------------------------
class TestCli:
    def test_exit_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_findings_text(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert main([str(tmp_path)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "bad.py:2:5: no-wall-clock" in out

    def test_exit_findings_json(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main([str(tmp_path), "--format", "json"]) == \
            EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_exit_error_on_unknown_rule(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--select", "bogus"]) == EXIT_ERROR
        assert "unknown rule" in capsys.readouterr().err

    def test_exit_error_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_ERROR

    def test_select_narrows_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main([str(tmp_path), "--select", "no-wall-clock"]) == \
            EXIT_CLEAN

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("no-wall-clock", "no-global-rng",
                        "picklable-tasks", "slots-hygiene",
                        "no-float-eq-on-clock", "exception-hygiene"):
            assert rule_id in out

    def test_repro_cli_dispatches_lint(self, tmp_path, capsys):
        from repro.cli import main as repro_main
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert repro_main(["lint", str(tmp_path)]) == EXIT_CLEAN


# ----------------------------------------------------------------------
class TestSelfRun:
    """The repository must pass its own determinism linter."""

    def test_repo_is_clean(self, capsys):
        paths = [str(REPO_ROOT / name)
                 for name in ("src", "benchmarks", "examples")]
        code = main(paths + ["--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN, f"simlint findings:\n{out}"


class TestAmbientEntropy:
    def test_fires_on_os_urandom(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import os
            token = os.urandom(8)
            """, select=["no-ambient-entropy"])
        assert rule_ids(findings) == ["no-ambient-entropy"]
        assert findings[0].line == 2

    def test_fires_on_uuid4(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import uuid
            run_id = uuid.uuid4()
            """, select=["no-ambient-entropy"])
        assert rule_ids(findings) == ["no-ambient-entropy"]

    def test_fires_on_from_import_of_entropy_source(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from os import urandom
            token = urandom(8)
            """, select=["no-ambient-entropy"])
        assert "no-ambient-entropy" in rule_ids(findings)

    def test_fires_on_secrets_import(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import secrets
            """, select=["no-ambient-entropy"])
        assert rule_ids(findings) == ["no-ambient-entropy"]

    def test_quiet_on_seeded_streams_and_uuid5(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import uuid

            from repro.sim.rng import StreamRegistry

            rng = StreamRegistry(7).stream("chaos.schedule-0")
            value = rng.uniform(0.5, 1.5)
            stable = uuid.uuid5(uuid.NAMESPACE_URL, "repro")
            """, select=["no-ambient-entropy"])
        assert findings == []

    def test_quiet_on_unrelated_urandom_attribute(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            class Fake:
                def urandom(self, n):
                    return b"x" * n

            token = Fake().urandom(8)
            """, select=["no-ambient-entropy"])
        assert findings == []

    def test_suppressible_inline(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import os
            token = os.urandom(8)  # repro: lint-ignore[no-ambient-entropy]
            """, select=["no-ambient-entropy"])
        assert findings == []


# ----------------------------------------------------------------------
class TestSingleEventQueue:
    def test_fires_on_heapq_import_in_kernel_package(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import heapq

            queue = []
            heapq.heappush(queue, (1.0, 0, 0, None))
            """, select=["single-event-queue"])
        assert rule_ids(findings) == ["single-event-queue"]
        assert findings[0].line == 1

    def test_fires_on_heapq_from_import_in_kernel_package(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from heapq import heappop, heappush
            """, select=["single-event-queue"])
        assert rule_ids(findings) == ["single-event-queue"]

    def test_quiet_on_heapq_outside_kernel_package(self, tmp_path):
        # Transaction priority queues (repro.scheduling) order
        # transactions, not events — heapq there is legal.
        findings = lint_snippet(tmp_path, """\
            import heapq

            pending = []
            heapq.heappush(pending, (0.5, "txn"))
            """, relpath="src/repro/scheduling/fixture_mod.py",
            select=["single-event-queue"])
        assert findings == []

    def test_fires_on_calendar_internal_access(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def drain(env):
                env._cal_buckets.clear()
                return env._cal_size
            """, relpath="src/repro/serve/fixture_mod.py",
            select=["single-event-queue"])
        assert rule_ids(findings) == ["single-event-queue"] * 2
        assert "_cal_buckets" in findings[0].message

    def test_fires_on_heap_environment_import(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.sim.environment import HeapEnvironment

            env = HeapEnvironment()
            """, relpath="src/repro/experiments/fixture_mod.py",
            select=["single-event-queue"])
        assert "single-event-queue" in rule_ids(findings)

    def test_fires_on_heap_environment_attribute_use(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import repro.sim.environment as environment

            env = environment.HeapEnvironment()
            """, relpath="src/repro/experiments/fixture_mod.py",
            select=["single-event-queue"])
        assert rule_ids(findings) == ["single-event-queue"]

    def test_quiet_in_environment_module_itself(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from heapq import heappop, heappush

            buckets = {}
            _cal_size = 0
            """, relpath="src/repro/sim/environment.py",
            select=["single-event-queue"])
        assert findings == []

    def test_quiet_outside_library_scope(self, tmp_path):
        # Benchmarks and tests run the heap kernel on purpose: it is
        # the executable specification for the A/B comparison.
        findings = lint_snippet(tmp_path, """\
            from repro.sim.environment import HeapEnvironment

            env = HeapEnvironment()
            """, relpath="benchmarks/fixture_mod.py",
            select=["single-event-queue"])
        assert findings == []

    def test_suppressible_inline(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def introspect(env):
                return env._cal_size  # repro: lint-ignore[single-event-queue]
            """, select=["single-event-queue"])
        assert findings == []


# ----------------------------------------------------------------------
class TestEntropyTaint:
    def test_fires_on_direct_flow_into_timeout(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time

            def run(env):
                env.timeout(time.monotonic() % 7.0)
            """, select=["no-entropy-taint"])
        assert rule_ids(findings) == ["no-entropy-taint"]
        assert findings[0].line == 4

    def test_fires_through_local_assignment(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import os

            def run(env):
                seed = os.urandom(4)[0]
                delay = seed * 2.0
                env.schedule(None, delay=delay)
            """, select=["no-entropy-taint"])
        assert rule_ids(findings) == ["no-entropy-taint"]
        assert findings[0].line == 6

    def test_fires_transitively_through_function_return(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time

            def jitter():
                return time.perf_counter() % 1.0

            def helper():
                return jitter() * 2.0

            def run(env):
                env.timeout(helper())
            """, select=["no-entropy-taint"])
        assert rule_ids(findings) == ["no-entropy-taint"]
        assert findings[0].line == 10

    def test_fires_across_modules(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from repro.sim.entropy_fixture import jitter

            def run(env):
                env.timeout(jitter())
            """, select=["no-entropy-taint"],
            extra=[("src/repro/sim/entropy_fixture.py", """\
                import time

                def jitter():
                    return time.monotonic() % 1.0
                """)])
        taint = [f for f in findings if f.rule_id == "no-entropy-taint"]
        assert [f.line for f in taint] == [4]
        assert taint[0].path == "src/repro/sim/fixture_mod.py"

    def test_quiet_on_seeded_streams_and_constants(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import random

            def run(env, stream):
                rng = random.Random(42)
                env.timeout(stream.uniform(0.0, 1.0))
                env.timeout(rng.uniform(0.0, 1.0))
                env.timeout(5.0)
            """, select=["no-entropy-taint"])
        assert findings == []

    def test_unseeded_rng_constructor_is_a_source(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import random

            def run(env):
                rng = random.Random()
                env.timeout(rng.uniform(0.0, 1.0))
            """, select=["no-entropy-taint"])
        assert rule_ids(findings) == ["no-entropy-taint"]

    def test_taint_cleared_by_reassignment(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time

            def run(env):
                delay = time.monotonic()
                delay = 5.0
                env.timeout(delay)
            """, select=["no-entropy-taint"])
        assert findings == []

    def test_serve_clock_module_is_exempt(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time

            def run(loop):
                loop.schedule(time.monotonic())
            """, relpath="src/repro/serve/clock.py",
            select=["no-entropy-taint"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time

            def run(env):
                env.timeout(time.monotonic())  # repro: lint-ignore[no-entropy-taint]
            """, select=["no-entropy-taint"])
        assert findings == []


# ----------------------------------------------------------------------
class TestSetIteration:
    def test_fires_on_for_loop_over_annotated_set(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            members: set[int] = set()

            def drain():
                for member in members:
                    print(member)
            """, select=["no-set-iteration"])
        assert rule_ids(findings) == ["no-set-iteration"]
        assert findings[0].line == 4

    def test_fires_on_comprehension_and_list_call(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            names = {"a", "b"}
            upper = [name.upper() for name in names]
            as_list = list(names)
            joined = ",".join(names)
            """, select=["no-set-iteration"])
        assert rule_ids(findings) == ["no-set-iteration"] * 3
        assert [f.line for f in findings] == [2, 3, 4]

    def test_fires_on_self_attribute_annotated_set(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            class Registry:
                def __init__(self):
                    self._members: set[int] = set()

                def drain(self):
                    return tuple(self._members)
            """, select=["no-set-iteration"])
        assert rule_ids(findings) == ["no-set-iteration"]
        assert findings[0].line == 6

    def test_fires_on_set_algebra_result(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            a = {1, 2}
            b = {2, 3}
            for x in a - b:
                print(x)
            """, select=["no-set-iteration"])
        assert rule_ids(findings) == ["no-set-iteration"]

    def test_quiet_on_sorted_and_membership(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            names = {"a", "b"}

            def ordered():
                for name in sorted(names):
                    print(name)
                return "a" in names and len(names)
            """, select=["no-set-iteration"])
        assert findings == []

    def test_quiet_on_lists_and_dicts(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            items = [1, 2]
            table = {"a": 1}
            for item in items:
                print(item)
            for key in table:
                print(key)
            """, select=["no-set-iteration"])
        assert findings == []

    def test_out_of_scope_path_is_quiet(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            names = {"a", "b"}
            for name in names:
                print(name)
            """, relpath="tests/fixture_mod.py",
            select=["no-set-iteration"])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            names = {"a", "b"}
            for name in names:  # repro: lint-ignore[no-set-iteration]
                print(name)
            """, select=["no-set-iteration"])
        assert findings == []


# ----------------------------------------------------------------------
class TestDecoratorSpanSuppression:
    DECORATED = """\
        import dataclasses

        class Event:
            __slots__ = ("a",)

        {marker_above}
        @dataclasses.dataclass{marker_inline}
        class Timeout(Event):
            b: int = 0
        """

    def _lint(self, tmp_path, above="", inline=""):
        code = self.DECORATED.format(marker_above=above,
                                     marker_inline=inline)
        return lint_snippet(tmp_path, code, select=["slots-hygiene"])

    def test_decorated_class_fires_and_anchors_on_class_line(
            self, tmp_path):
        findings = self._lint(tmp_path)
        assert rule_ids(findings) == ["slots-hygiene"]
        assert findings[0].line == 8  # the `class` line, not line 7

    def test_marker_on_decorator_line_suppresses(self, tmp_path):
        findings = self._lint(
            tmp_path, inline="  # repro: lint-ignore[slots-hygiene]")
        assert findings == []

    def test_marker_comment_above_decorator_suppresses(self, tmp_path):
        findings = self._lint(
            tmp_path, above="# repro: lint-ignore[slots-hygiene]")
        assert findings == []

    def test_marker_for_other_rule_does_not_suppress(self, tmp_path):
        findings = self._lint(
            tmp_path, inline="  # repro: lint-ignore[no-wall-clock]")
        assert rule_ids(findings) == ["slots-hygiene"]

    def test_decorated_function_span_via_apply_rules(self, tmp_path):
        # A rule anchoring on a decorated `def` line: the marker on the
        # decorator's line must reach it.
        class DefRule(Rule):
            rule_id = "def-rule"
            summary = "flags every function definition"

            def visit_FunctionDef(self, node):
                self.report(node, "a def")

        code = textwrap.dedent("""\
            import functools

            @functools.cache  # repro: lint-ignore[def-rule]
            def cached():
                return 1

            @functools.cache
            def uncached():
                return 2
            """)
        target = tmp_path / "mod.py"
        target.write_text(code)
        module = SourceModule(target, "mod.py", code)
        findings = apply_rules(module, [DefRule()])
        assert [(f.rule_id, f.line) for f in findings] == \
            [("def-rule", 8)]


# ----------------------------------------------------------------------
class TestProjectGraph:
    def test_call_graph_resolves_local_imported_and_methods(
            self, tmp_path):
        code_a = textwrap.dedent("""\
            from repro.sim.helper_fixture import leaf

            def outer():
                return inner() + leaf()

            def inner():
                return 1

            class Box:
                def get(self):
                    return self.compute()

                def compute(self):
                    return 2
            """)
        code_b = textwrap.dedent("""\
            def leaf():
                return 3
            """)
        module_a = SourceModule(tmp_path / "a.py",
                                "src/repro/sim/graph_fixture.py", code_a)
        module_b = SourceModule(tmp_path / "b.py",
                                "src/repro/sim/helper_fixture.py", code_b)
        graph = ProjectGraph([module_a, module_b])
        mod = "repro.sim.graph_fixture"
        assert graph.callees(f"{mod}.outer") == {
            f"{mod}.inner", "repro.sim.helper_fixture.leaf"}
        assert graph.callees(f"{mod}.Box.get") == {f"{mod}.Box.compute"}
        assert graph.transitive_callees(f"{mod}.outer") >= {
            f"{mod}.inner"}

    def test_module_name_strips_src_and_init(self):
        assert ProjectGraph.module_name(
            "src/repro/sim/environment.py") == "repro.sim.environment"
        assert ProjectGraph.module_name(
            "src/repro/sim/__init__.py") == "repro.sim"
        assert ProjectGraph.module_name("benchmarks/bench.py") == \
            "benchmarks.bench"


# ----------------------------------------------------------------------
class TestSarif:
    def test_render_sarif_structure(self):
        findings = [Finding("src/a.py", 3, 5, "no-wall-clock", "boom")]
        payload = json.loads(render_sarif(
            findings, {"no-wall-clock": "no host clocks"}))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        rules = {rule["id"]: rule["shortDescription"]["text"]
                 for rule in run["tool"]["driver"]["rules"]}
        assert rules == {"no-wall-clock": "no host clocks"}
        result = run["results"][0]
        assert result["ruleId"] == "no-wall-clock"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["region"] == {"startLine": 3, "startColumn": 5}

    def test_unknown_rule_ids_get_driver_entries(self):
        findings = [Finding("a.py", 1, 1, "custom-rule", "m")]
        payload = json.loads(render_sarif(findings))
        ids = [rule["id"] for rule
               in payload["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == ["custom-rule"]

    def test_cli_format_sarif(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\n")
        assert main([str(tmp_path), "--format", "sarif"]) == \
            EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        results = payload["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"no-wall-clock"}
