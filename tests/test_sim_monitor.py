"""Unit + property tests for the measurement utilities."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import (Counter, CounterSet, Tally, TimeSeries,
                               TimeWeighted)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestTally:
    def test_empty_tally_defaults(self):
        tally = Tally("x")
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.variance == 0.0

    def test_empty_tally_full_surface(self):
        # Every statistic must be safe to read with zero observations —
        # an idle replica's ledger is summarised just like a busy one's.
        tally = Tally("idle")
        assert tally.total == 0.0
        assert tally.stdev == 0.0
        assert tally.minimum == float("inf")
        assert tally.maximum == float("-inf")
        repr(tally)  # formatting must not choke on the infinities

    def test_variance_zero_below_two_observations(self):
        tally = Tally()
        tally.observe(3.0)
        assert tally.variance == 0.0
        assert tally.stdev == 0.0

    def test_single_observation(self):
        tally = Tally()
        tally.observe(5.0)
        assert tally.mean == 5.0
        assert tally.minimum == tally.maximum == 5.0
        assert tally.variance == 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    @settings(max_examples=100)
    def test_matches_statistics_module(self, values):
        tally = Tally()
        for value in values:
            tally.observe(value)
        assert tally.mean == pytest.approx(statistics.fmean(values),
                                           rel=1e-9, abs=1e-6)
        assert tally.variance == pytest.approx(statistics.variance(values),
                                               rel=1e-6, abs=1e-6)
        assert tally.minimum == min(values)
        assert tally.maximum == max(values)
        assert tally.total == pytest.approx(sum(values), rel=1e-9, abs=1e-6)

    def test_stdev_is_sqrt_variance(self):
        tally = Tally()
        for v in (1.0, 2.0, 3.0, 4.0):
            tally.observe(v)
        assert tally.stdev == pytest.approx(tally.variance ** 0.5)


class TestTimeSeries:
    def test_record_and_items(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(5.0, 2.0)
        assert list(series.items()) == [(0.0, 1.0), (5.0, 2.0)]
        assert len(series) == 2

    def test_empty_series(self):
        series = TimeSeries("empty")
        assert len(series) == 0
        assert list(series.items()) == []
        smoothed = series.moving_window_average(5.0)
        assert len(smoothed) == 0
        # With no samples and no explicit end, one empty bucket results.
        buckets = series.bucket_sums(1_000.0)
        assert list(buckets.values) == [0.0]

    def test_rejects_time_travel(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ValueError):
            series.record(5.0, 2.0)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.record(1.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2

    def test_moving_window_flat_signal_unchanged(self):
        series = TimeSeries()
        for t in range(20):
            series.record(float(t), 3.0)
        smoothed = series.moving_window_average(5.0)
        assert all(v == pytest.approx(3.0) for v in smoothed.values)

    def test_moving_window_smooths_spike(self):
        series = TimeSeries()
        for t in range(21):
            series.record(float(t), 10.0 if t == 10 else 0.0)
        smoothed = series.moving_window_average(4.0)
        assert max(smoothed.values) < 10.0
        assert smoothed.values[10] > 0.0

    def test_moving_window_requires_positive_window(self):
        with pytest.raises(ValueError):
            TimeSeries().moving_window_average(0.0)

    def test_bucket_sums(self):
        series = TimeSeries()
        for t, v in [(0.5, 1.0), (0.9, 2.0), (1.5, 4.0), (2.7, 8.0)]:
            series.record(t, v)
        bucketed = series.bucket_sums(1.0, start=0.0, end=3.0)
        assert bucketed.values == [3.0, 4.0, 8.0]
        assert bucketed.times == [0.5, 1.5, 2.5]

    def test_bucket_sums_ignores_out_of_range(self):
        series = TimeSeries()
        series.record(5.0, 100.0)
        bucketed = series.bucket_sums(1.0, start=0.0, end=3.0)
        assert sum(bucketed.values) == 0.0

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              finite_floats),
                    min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_bucket_sums_conserve_mass(self, points):
        points.sort(key=lambda p: p[0])
        series = TimeSeries()
        for t, v in points:
            series.record(t, v)
        bucketed = series.bucket_sums(7.0, start=0.0, end=101.0)
        assert sum(bucketed.values) == pytest.approx(
            sum(v for __, v in points), rel=1e-9, abs=1e-6)


class TestTimeWeighted:
    def test_constant_signal(self):
        clock = [0.0]
        tw = TimeWeighted(lambda: clock[0], initial=4.0)
        clock[0] = 10.0
        assert tw.average == pytest.approx(4.0)

    def test_step_signal(self):
        clock = [0.0]
        tw = TimeWeighted(lambda: clock[0], initial=0.0)
        clock[0] = 5.0
        tw.update(10.0)   # 0 for 5 units
        clock[0] = 10.0   # 10 for 5 units
        assert tw.average == pytest.approx(5.0)
        assert tw.current == 10.0

    def test_zero_span_returns_current(self):
        tw = TimeWeighted(lambda: 0.0, initial=7.0)
        assert tw.average == 7.0


class TestCounters:
    def test_counter_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(3)
        assert counter.value == 4

    def test_counter_set_creates_lazily(self):
        counters = CounterSet()
        assert counters.value("missing") == 0
        counters.increment("a")
        counters.increment("a", 2)
        assert counters.value("a") == 3

    def test_counter_set_as_dict_sorted(self):
        counters = CounterSet()
        counters.increment("zebra")
        counters.increment("apple")
        assert list(counters.as_dict()) == ["apple", "zebra"]
