"""Unit + property tests for the measurement utilities."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import (Counter, CounterSet, Tally, TimeSeries,
                               TimeWeighted)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestTally:
    def test_empty_tally_defaults(self):
        tally = Tally("x")
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.variance == 0.0

    def test_empty_tally_full_surface(self):
        # Every statistic must be safe to read with zero observations —
        # an idle replica's ledger is summarised just like a busy one's.
        tally = Tally("idle")
        assert tally.total == 0.0
        assert tally.stdev == 0.0
        assert tally.minimum == float("inf")
        assert tally.maximum == float("-inf")
        repr(tally)  # formatting must not choke on the infinities

    def test_variance_zero_below_two_observations(self):
        tally = Tally()
        tally.observe(3.0)
        assert tally.variance == 0.0
        assert tally.stdev == 0.0

    def test_single_observation(self):
        tally = Tally()
        tally.observe(5.0)
        assert tally.mean == 5.0
        assert tally.minimum == tally.maximum == 5.0
        assert tally.variance == 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    @settings(max_examples=100)
    def test_matches_statistics_module(self, values):
        tally = Tally()
        for value in values:
            tally.observe(value)
        assert tally.mean == pytest.approx(statistics.fmean(values),
                                           rel=1e-9, abs=1e-6)
        assert tally.variance == pytest.approx(statistics.variance(values),
                                               rel=1e-6, abs=1e-6)
        assert tally.minimum == min(values)
        assert tally.maximum == max(values)
        assert tally.total == pytest.approx(sum(values), rel=1e-9, abs=1e-6)

    def test_stdev_is_sqrt_variance(self):
        tally = Tally()
        for v in (1.0, 2.0, 3.0, 4.0):
            tally.observe(v)
        assert tally.stdev == pytest.approx(tally.variance ** 0.5)


class TestTallyMerge:
    def test_merge_into_empty_copies(self):
        a, b = Tally("a"), Tally("b")
        for v in (1.0, 2.0, 3.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 3
        assert a.mean == b.mean
        assert a.variance == b.variance
        assert (a.minimum, a.maximum) == (1.0, 3.0)

    def test_merge_empty_is_noop(self):
        a = Tally()
        a.observe(5.0)
        a.merge(Tally())
        assert a.count == 1
        assert a.mean == 5.0

    def test_merge_returns_self_for_chaining(self):
        a, b, c = Tally(), Tally(), Tally()
        b.observe(1.0)
        c.observe(2.0)
        assert a.merge(b).merge(c) is a
        assert a.count == 2

    @given(st.lists(finite_floats, min_size=1, max_size=60),
           st.lists(finite_floats, min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_merge_matches_sequential_observation(self, left, right):
        merged = Tally()
        for v in left:
            merged.observe(v)
        other = Tally()
        for v in right:
            other.observe(v)
        merged.merge(other)

        sequential = Tally()
        for v in left + right:
            sequential.observe(v)

        assert merged.count == sequential.count
        assert merged.total == pytest.approx(sequential.total,
                                             rel=1e-9, abs=1e-6)
        assert merged.mean == pytest.approx(sequential.mean,
                                            rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(sequential.variance,
                                                rel=1e-6, abs=1e-6)
        assert merged.minimum == sequential.minimum
        assert merged.maximum == sequential.maximum


class TestTimeSeries:
    def test_record_and_items(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(5.0, 2.0)
        assert list(series.items()) == [(0.0, 1.0), (5.0, 2.0)]
        assert len(series) == 2

    def test_empty_series(self):
        series = TimeSeries("empty")
        assert len(series) == 0
        assert list(series.items()) == []
        smoothed = series.moving_window_average(5.0)
        assert len(smoothed) == 0
        # With no samples and no explicit end, one empty bucket results.
        buckets = series.bucket_sums(1_000.0)
        assert list(buckets.values) == [0.0]

    def test_rejects_time_travel(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ValueError):
            series.record(5.0, 2.0)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.record(1.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2

    def test_moving_window_flat_signal_unchanged(self):
        series = TimeSeries()
        for t in range(20):
            series.record(float(t), 3.0)
        smoothed = series.moving_window_average(5.0)
        assert all(v == pytest.approx(3.0) for v in smoothed.values)

    def test_moving_window_smooths_spike(self):
        series = TimeSeries()
        for t in range(21):
            series.record(float(t), 10.0 if t == 10 else 0.0)
        smoothed = series.moving_window_average(4.0)
        assert max(smoothed.values) < 10.0
        assert smoothed.values[10] > 0.0

    def test_moving_window_requires_positive_window(self):
        with pytest.raises(ValueError):
            TimeSeries().moving_window_average(0.0)

    def test_bucket_sums(self):
        series = TimeSeries()
        for t, v in [(0.5, 1.0), (0.9, 2.0), (1.5, 4.0), (2.7, 8.0)]:
            series.record(t, v)
        bucketed = series.bucket_sums(1.0, start=0.0, end=3.0)
        assert bucketed.values == [3.0, 4.0, 8.0]
        assert bucketed.times == [0.5, 1.5, 2.5]

    def test_bucket_sums_ignores_out_of_range(self):
        series = TimeSeries()
        series.record(5.0, 100.0)
        bucketed = series.bucket_sums(1.0, start=0.0, end=3.0)
        assert sum(bucketed.values) == 0.0

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              finite_floats),
                    min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_bucket_sums_conserve_mass(self, points):
        points.sort(key=lambda p: p[0])
        series = TimeSeries()
        for t, v in points:
            series.record(t, v)
        bucketed = series.bucket_sums(7.0, start=0.0, end=101.0)
        assert sum(bucketed.values) == pytest.approx(
            sum(v for __, v in points), rel=1e-9, abs=1e-6)


class TestBoundedTimeSeries:
    def test_unbounded_by_default(self):
        series = TimeSeries()
        for t in range(10_000):
            series.record(float(t), 1.0)
        assert len(series) == 10_000

    def test_requires_at_least_two_points(self):
        with pytest.raises(ValueError):
            TimeSeries(max_points=1)

    def test_stays_within_bound(self):
        series = TimeSeries(max_points=64)
        for t in range(100_000):
            series.record(float(t), float(t))
        assert len(series) <= 64
        assert series.offered == 100_000

    def test_decimation_keeps_fixed_stride_grid(self):
        series = TimeSeries(max_points=8)
        for t in range(1000):
            series.record(float(t), float(t))
        # Retained samples sit on a uniform power-of-two offer grid.
        stride = series.stride
        assert stride >= 2
        assert all(t % stride == 0 for t in series.times)
        diffs = {b - a for a, b in zip(series.times, series.times[1:])}
        assert diffs == {float(stride)}

    def test_decimation_preserves_first_sample(self):
        series = TimeSeries(max_points=4)
        for t in range(100):
            series.record(float(t), float(t))
        assert series.times[0] == 0.0

    def test_odd_max_points_never_exceeds_bound(self):
        series = TimeSeries(max_points=5)
        for t in range(10_000):
            series.record(float(t), 1.0)
        assert len(series) <= 5

    def test_monotonicity_still_enforced_when_bounded(self):
        series = TimeSeries(max_points=4)
        series.record(10.0, 1.0)
        with pytest.raises(ValueError):
            series.record(5.0, 1.0)


class TestTimeWeightedMean:
    def test_empty_series_is_zero(self):
        assert TimeSeries().time_weighted_mean() == 0.0

    def test_piecewise_constant_integral(self):
        series = TimeSeries()
        series.record(0.0, 2.0)   # 2 over [0, 10)
        series.record(10.0, 4.0)  # 4 over [10, 20)
        assert series.time_weighted_mean(until=20.0) == pytest.approx(3.0)

    def test_last_value_extends_to_until(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        assert series.time_weighted_mean(until=5.0) == pytest.approx(1.0)

    def test_until_before_last_sample_rejected(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ValueError):
            series.time_weighted_mean(until=5.0)

    def test_single_sample_zero_span_falls_back_to_mean(self):
        series = TimeSeries()
        series.record(3.0, 7.0)
        assert series.time_weighted_mean() == 7.0

    def test_back_to_back_same_timestamp_regression(self):
        # Several lifecycle events can land at one simulated instant; a
        # series made only of such samples has zero span and must not
        # divide by zero.
        series = TimeSeries()
        series.record(5.0, 1.0)
        series.record(5.0, 3.0)
        series.record(5.0, 5.0)
        assert series.time_weighted_mean() == pytest.approx(3.0)

    def test_same_timestamp_pair_mid_series_contributes_no_weight(self):
        series = TimeSeries()
        series.record(0.0, 2.0)
        series.record(10.0, 100.0)  # instantly replaced at t=10
        series.record(10.0, 2.0)
        assert series.time_weighted_mean(until=20.0) == pytest.approx(2.0)


class TestTimeWeighted:
    def test_constant_signal(self):
        clock = [0.0]
        tw = TimeWeighted(lambda: clock[0], initial=4.0)
        clock[0] = 10.0
        assert tw.average == pytest.approx(4.0)

    def test_step_signal(self):
        clock = [0.0]
        tw = TimeWeighted(lambda: clock[0], initial=0.0)
        clock[0] = 5.0
        tw.update(10.0)   # 0 for 5 units
        clock[0] = 10.0   # 10 for 5 units
        assert tw.average == pytest.approx(5.0)
        assert tw.current == 10.0

    def test_zero_span_returns_current(self):
        tw = TimeWeighted(lambda: 0.0, initial=7.0)
        assert tw.average == 7.0

    def test_back_to_back_same_timestamp_updates_regression(self):
        # Two updates at one simulated instant must not divide by zero
        # and must report the latest value as the (zero-span) average.
        clock = [3.0]
        tw = TimeWeighted(lambda: clock[0], initial=1.0)
        tw.update(10.0)
        tw.update(20.0)
        assert tw.current == 20.0
        assert tw.average == 20.0
        clock[0] = 13.0  # 20 for the whole non-zero span
        assert tw.average == pytest.approx(20.0)


class TestCounters:
    def test_counter_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(3)
        assert counter.value == 4

    def test_counter_set_creates_lazily(self):
        counters = CounterSet()
        assert counters.value("missing") == 0
        counters.increment("a")
        counters.increment("a", 2)
        assert counters.value("a") == 3

    def test_counter_set_as_dict_sorted(self):
        counters = CounterSet()
        counters.increment("zebra")
        counters.increment("apple")
        assert list(counters.as_dict()) == ["apple", "zebra"]
