"""Durable recovery: WAL + checkpoints, fault-plan validation, and the
invariant monitor.

Covers the acceptance scenarios of the durability layer:

* the write-ahead log's group commit, crash, and checkpoint fencing;
* :class:`FaultPlan` validation rejecting impossible outage histories;
* scripted portal crashes recovering with bounded RPO (the unflushed
  WAL tail) and reaching state parity with a fault-free run;
* a deliberately corrupted WAL tail refusing to replay;
* the invariant monitor's conservation laws, and its observer property
  (a monitored fault-free run is bit-identical to an unmonitored one).
"""

import random

import pytest

from repro.cluster import HedgedRouter, run_cluster_simulation
from repro.db.database import Database
from repro.db.transactions import Update
from repro.db.wal import DurabilityConfig, WriteAheadLog
from repro.faults import FaultEvent, FaultPlan
from repro.faults.plan import CRASH, PORTAL_CRASH, PORTAL_RECOVER, RECOVER
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

DURATION_MS = 20_000.0
TRACE = StockWorkloadGenerator(WorkloadSpec().scaled(DURATION_MS),
                               master_seed=11).generate()


def run_cluster(*, fault_plan=None, durability=None, invariants=False,
                policy="QUTS", master_seed=1, n_replicas=2):
    return run_cluster_simulation(
        n_replicas, lambda: make_scheduler(policy), TRACE,
        QCFactory.balanced(), router=HedgedRouter(),
        master_seed=master_seed, fault_plan=fault_plan,
        durability=durability, invariants=invariants)


# ---------------------------------------------------------------------------
# Write-ahead log unit behaviour
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def _update(self, item, value, seq):
        update = Update(0.0, 5.0, item, value=value)
        update.seq = seq
        return update

    def test_group_commit_flushes_on_boundary(self):
        wal = WriteAheadLog(flush_every=3)
        wal.append_applied(self._update("a", 1.0, 1), now=10.0)
        wal.append_applied(self._update("a", 2.0, 2), now=20.0)
        assert wal.unflushed == 2
        assert wal.durable_lsn == 0
        wal.append_applied(self._update("b", 3.0, 1), now=30.0)
        assert wal.unflushed == 0
        assert wal.durable_lsn == 3
        assert wal.flushes == 1

    def test_crash_loses_exactly_the_unflushed_tail(self):
        wal = WriteAheadLog(flush_every=4)
        for i in range(6):  # 4 flushed, 2 buffered
            wal.append_applied(self._update("a", float(i), i + 1),
                               now=float(i))
        lost = wal.crash()
        assert [r.lsn for r in lost] == [5, 6]
        assert wal.records_lost == 2
        assert wal.durable_lsn == 4
        assert wal.unflushed == 0

    def test_checkpoint_flushes_and_fences(self):
        db = Database(["a", "b"])
        wal = WriteAheadLog(flush_every=100)
        wal.append_applied(self._update("a", 1.0, 1), now=5.0)
        checkpoint = wal.take_checkpoint(db, {"pending_updates": 0},
                                         now=6.0)
        assert wal.unflushed == 0  # checkpoint forces the flush
        assert checkpoint.last_lsn == 1
        wal.append_applied(self._update("b", 2.0, 1), now=7.0)
        wal.flush()
        recovered, tail = wal.recover()
        assert recovered is checkpoint
        assert [r.lsn for r in tail] == [2]  # only records past the fence

    def test_recover_without_checkpoint_returns_whole_log(self):
        wal = WriteAheadLog(flush_every=1)
        wal.append_applied(self._update("a", 1.0, 1), now=1.0)
        checkpoint, tail = wal.recover()
        assert checkpoint is None
        assert [r.lsn for r in tail] == [1]

    def test_records_are_checksummed(self):
        wal = WriteAheadLog(flush_every=1)
        record = wal.append_applied(self._update("a", 1.5, 1), now=1.0)
        assert record.verify()

    def test_corrupted_tail_raises_invariant_violation(self):
        wal = WriteAheadLog(flush_every=1)
        wal.append_applied(self._update("a", 1.0, 1), now=1.0)
        wal.corrupt_tail_record()
        with pytest.raises(InvariantViolation, match="corrupted WAL"):
            wal.recover()

    def test_durability_config_validation(self):
        with pytest.raises(ValueError):
            DurabilityConfig(checkpoint_interval_ms=0)
        with pytest.raises(ValueError):
            DurabilityConfig(flush_every=0)
        with pytest.raises(ValueError):
            WriteAheadLog(flush_every=0)


# ---------------------------------------------------------------------------
# Fault-plan validation (impossible outage histories are plan bugs)
# ---------------------------------------------------------------------------
class TestFaultPlanValidation:
    def test_double_crash_of_down_replica_rejected(self):
        with pytest.raises(ValueError, match="is in 'down'"):
            FaultPlan([FaultEvent(100.0, CRASH, replica=0),
                       FaultEvent(200.0, CRASH, replica=0)])

    def test_recover_without_prior_crash_rejected(self):
        with pytest.raises(ValueError, match="requires condition 'down'"):
            FaultPlan([FaultEvent(100.0, RECOVER, replica=1)])

    def test_double_portal_crash_rejected(self):
        with pytest.raises(ValueError, match="portal crashed again"):
            FaultPlan([FaultEvent(100.0, PORTAL_CRASH),
                       FaultEvent(200.0, PORTAL_CRASH)])

    def test_portal_recover_without_crash_rejected(self):
        with pytest.raises(ValueError,
                           match="without a prior portal crash"):
            FaultPlan([FaultEvent(100.0, PORTAL_RECOVER)])

    def test_replica_events_inside_portal_outage_rejected(self):
        with pytest.raises(ValueError, match="portal-wide outage"):
            FaultPlan([FaultEvent(100.0, PORTAL_CRASH),
                       FaultEvent(150.0, CRASH, replica=0),
                       FaultEvent(200.0, PORTAL_RECOVER)])

    def test_crash_recover_cycles_are_valid(self):
        plan = FaultPlan([FaultEvent(100.0, CRASH, replica=0),
                          FaultEvent(200.0, RECOVER, replica=0),
                          FaultEvent(300.0, CRASH, replica=0),
                          FaultEvent(400.0, RECOVER, replica=0)])
        assert len(plan) == 4

    def test_portal_recover_resets_replica_state(self):
        # The portal outage subsumes replica 0's crash; after
        # portal_recover everything is up, so a fresh crash is legal.
        plan = FaultPlan([FaultEvent(50.0, CRASH, replica=0),
                          FaultEvent(100.0, PORTAL_CRASH),
                          FaultEvent(200.0, PORTAL_RECOVER),
                          FaultEvent(300.0, CRASH, replica=0),
                          FaultEvent(400.0, RECOVER, replica=0)])
        assert len(plan) == 5

    def test_merged_plans_are_revalidated(self):
        single = FaultPlan.replica_crash(0, 100.0, 50.0)
        with pytest.raises(ValueError, match="is in 'down'"):
            single.merged(FaultPlan.replica_crash(0, 120.0, 50.0))

    def test_portal_crash_constructor(self):
        plan = FaultPlan.portal_crash(600_000.0, 5_000.0)
        assert [e.kind for e in plan] == [PORTAL_CRASH, PORTAL_RECOVER]
        with pytest.raises(ValueError):
            FaultPlan.portal_crash(600_000.0, 0.0)


# ---------------------------------------------------------------------------
# Scripted portal crash: RPO bound, RTO reported, state parity
# ---------------------------------------------------------------------------
class TestPortalCrashRecovery:
    DURABILITY = DurabilityConfig(checkpoint_interval_ms=5_000.0,
                                  flush_every=8)
    PLAN = FaultPlan.portal_crash(12_000.0, 2_000.0)

    def test_recovers_with_bounded_rpo_and_reports_rto(self):
        result = run_cluster(fault_plan=self.PLAN,
                             durability=self.DURABILITY, invariants=True)
        assert result.fault_counters["portal_crashes"] == 1
        assert result.fault_counters["portal_recoveries"] == 1
        # The whole portal went down once for 2 s.
        assert result.downtime_union_ms == pytest.approx(2_000.0)
        assert result.downtime_ms == pytest.approx(4_000.0)  # 2 replicas
        portal = [i for i in result.incidents if i["scope"] == "portal"]
        assert len(portal) == 1
        incident = portal[0]
        # RPO: only the unflushed group-commit tail can be lost, and
        # the checkpoint fence means recovery replayed at most the
        # records applied since the last checkpoint (taken at 10 s).
        assert incident["rpo_uu"] < self.DURABILITY.flush_every
        assert incident["checkpoint_at_ms"] == pytest.approx(10_000.0)
        assert incident["caught_up"]
        assert incident["rto_ms"] is not None and incident["rto_ms"] > 0
        assert result.rto_ms_max == pytest.approx(incident["rto_ms"])
        # Replay volume is fenced by the checkpoint: it cannot exceed
        # the updates applied in the 2 s between checkpoint and crash.
        replica_incidents = [i for i in result.incidents
                             if i["scope"] == "replica"]
        assert len(replica_incidents) == 2
        for inc in replica_incidents:
            assert inc["wal_replayed"] <= inc["resynced"] * 10  # sanity
            assert inc["recovered_at_ms"] == pytest.approx(14_000.0)

    def test_reaches_state_parity_with_fault_free_run(self):
        # After catching up, every replica's database must agree with a
        # fault-free run of the same trace: same values, same master
        # state, same #uu (the digest ignores volatile sequence ids).
        baseline = run_cluster(durability=self.DURABILITY)
        crashed = run_cluster(fault_plan=self.PLAN,
                              durability=self.DURABILITY, invariants=True)
        assert crashed.state_digests == baseline.state_digests

    def test_zero_violations_with_monitor_enabled(self):
        # verify_complete runs inside run_cluster_simulation; reaching
        # the assert means no law was broken during the chaos run.
        result = run_cluster(fault_plan=self.PLAN,
                             durability=self.DURABILITY, invariants=True)
        assert result.invariants_checked

    def test_corrupted_wal_tail_aborts_strict_recovery(self):
        # The strict WAL recover() (no portal) still refuses to replay
        # a damaged log outright — corruption tolerance is a *portal*
        # recovery feature (CRC-truncated replay + peer read-repair),
        # not a licence for the log itself to lie.
        from repro.cluster import ReplicatedPortal
        from repro.sim import Environment
        from repro.sim.rng import StreamRegistry

        env = Environment()
        portal = ReplicatedPortal(
            env, 1, lambda: make_scheduler("FIFO"), StreamRegistry(3),
            durability=DurabilityConfig(checkpoint_interval_ms=60_000.0,
                                        flush_every=1))
        server = portal.replicas[0].server
        for i in range(4):
            server.submit_update(Update(0.0, 5.0, "x", value=float(i)))
        env.run(until=100.0)
        portal.crash_replica(0)
        portal.replicas[0].wal.corrupt_tail_record()
        with pytest.raises(InvariantViolation, match="corrupted WAL"):
            portal.replicas[0].wal.recover()

    def test_corrupted_wal_tail_detected_and_survived_at_recovery(self):
        # Portal recovery survives the same damage: the CRC scan
        # truncates the replay at the first bad record and counts the
        # refused suffix (no healthy peer here, so it stays unrepaired).
        from repro.cluster import ReplicatedPortal
        from repro.sim import Environment
        from repro.sim.rng import StreamRegistry

        env = Environment()
        portal = ReplicatedPortal(
            env, 1, lambda: make_scheduler("FIFO"), StreamRegistry(3),
            durability=DurabilityConfig(checkpoint_interval_ms=60_000.0,
                                        flush_every=1))
        server = portal.replicas[0].server
        for i in range(4):
            server.submit_update(Update(0.0, 5.0, "x", value=float(i)))
        env.run(until=100.0)
        portal.crash_replica(0)
        portal.replicas[0].wal.corrupt_tail_record()
        portal.recover_replica(0)
        counters = portal.fault_counters.as_dict()
        assert counters.get("wal_corruption_detected", 0) == 1
        assert counters.get("wal_corrupt_unrepaired", 0) == 1
        assert portal.replicas[0].up


# ---------------------------------------------------------------------------
# Availability accounting: union of outage intervals, not the sum
# ---------------------------------------------------------------------------
class TestAvailabilityUnion:
    def test_overlapping_outages_counted_once(self):
        # Both replicas down over the same 2 s window: the portal was
        # unavailable for 2 s, not 4 replica-seconds.
        plan = FaultPlan([FaultEvent(8_000.0, CRASH, replica=0),
                          FaultEvent(10_000.0, RECOVER, replica=0),
                          FaultEvent(8_000.0, CRASH, replica=1),
                          FaultEvent(10_000.0, RECOVER, replica=1)])
        result = run_cluster(fault_plan=plan)
        assert result.downtime_ms == pytest.approx(4_000.0)
        assert result.downtime_union_ms == pytest.approx(2_000.0)
        assert result.availability == pytest.approx(
            1.0 - 2_000.0 / result.duration)
        assert result.replica_availability == pytest.approx(
            1.0 - 4_000.0 / (2 * result.duration))

    def test_disjoint_outages_still_add_up(self):
        plan = FaultPlan([FaultEvent(6_000.0, CRASH, replica=0),
                          FaultEvent(7_000.0, RECOVER, replica=0),
                          FaultEvent(9_000.0, CRASH, replica=1),
                          FaultEvent(10_500.0, RECOVER, replica=1)])
        result = run_cluster(fault_plan=plan)
        assert result.downtime_union_ms == pytest.approx(2_500.0)
        assert result.downtime_ms == pytest.approx(2_500.0)


# ---------------------------------------------------------------------------
# Property: recovery from a crash at any WAL position is bit-identical
# ---------------------------------------------------------------------------
class TestRecoveryProperties:
    N_UPDATES = 48
    KEYS = ("a", "b", "c")
    CHECKPOINT_EVERY = 7
    FLUSH_EVERY = 3

    def _stream(self, seed):
        rng = random.Random(seed)
        return [(rng.choice(self.KEYS), round(rng.uniform(0, 100), 3),
                 float(i + 1)) for i in range(self.N_UPDATES)]

    def _apply(self, db, item, value, now, wal=None):
        update = Update(now, 5.0, item, value=value)
        db.register_update(update, now)
        db.apply_update(update, now)
        if wal is not None:
            wal.append_applied(update, now)

    def _baseline_digest(self, stream):
        db = Database(self.KEYS)
        for item, value, now in stream:
            self._apply(db, item, value, now)
        return db.state_digest()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_crash_at_every_wal_position_recovers_exactly(self, seed):
        stream = self._stream(seed)
        want = self._baseline_digest(stream)
        for crash_at in range(self.N_UPDATES + 1):
            db = Database(self.KEYS)
            wal = WriteAheadLog(flush_every=self.FLUSH_EVERY)
            for i, (item, value, now) in enumerate(stream[:crash_at]):
                self._apply(db, item, value, now, wal)
                if (i + 1) % self.CHECKPOINT_EVERY == 0:
                    wal.take_checkpoint(db, {}, now)
            # Fail-stop: volatile state dies, the durable trail survives.
            lost = wal.crash()
            db.clear()
            checkpoint, tail = wal.recover()
            if checkpoint is not None:
                db.restore(checkpoint.items)
            for record in tail:
                db.replay_applied(record)
            # Re-sync: the lost tail (from the durable source) and the
            # rest of the stream arrive as fresh updates.
            resync = [(r.item, r.value, r.applied_at) for r in lost]
            for item, value, now in resync + stream[crash_at:]:
                self._apply(db, item, value, now)
            assert db.state_digest() == want, f"crash at {crash_at}"

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_monitored_empty_plan_changes_no_result_field(self, seed):
        plain = run_cluster(master_seed=seed)
        audited = run_cluster(master_seed=seed,
                              fault_plan=FaultPlan.none(),
                              invariants=True)
        assert audited.total_percent == plain.total_percent
        assert audited.qos_percent == plain.qos_percent
        assert audited.qod_percent == plain.qod_percent
        assert audited.mean_response_time == plain.mean_response_time
        assert audited.counters == plain.counters
        assert audited.routed_counts == plain.routed_counts
        assert audited.state_digests == plain.state_digests
        assert audited.downtime_ms == plain.downtime_ms == 0.0
        assert audited.incidents == plain.incidents == []
        assert audited.availability == plain.availability == 1.0
        assert audited.invariants_checked and not plain.invariants_checked


# ---------------------------------------------------------------------------
# Invariant monitor unit behaviour
# ---------------------------------------------------------------------------
class TestInvariantMonitor:
    def test_clock_monotonicity(self):
        clock = iter([5.0, 3.0])
        monitor = InvariantMonitor(lambda: next(clock))
        monitor.record("query_submitted", txn_id=1)
        with pytest.raises(InvariantViolation, match="clock ran"):
            monitor.record("query_committed", txn_id=1)

    def test_negative_queue_length(self):
        monitor = InvariantMonitor()
        with pytest.raises(InvariantViolation, match="negative queue"):
            monitor.record("update_submitted", txn_id=1,
                           pending_updates=-1)

    def test_double_terminal_detected(self):
        monitor = InvariantMonitor()
        monitor.record("update_submitted", txn_id=7)
        monitor.record("update_applied", txn_id=7)
        with pytest.raises(InvariantViolation, match="second terminal"):
            monitor.record("update_superseded", txn_id=7)

    def test_terminal_without_submission_detected(self):
        monitor = InvariantMonitor()
        with pytest.raises(InvariantViolation, match="without ever"):
            monitor.record("query_committed", txn_id=9)

    def test_double_submission_detected(self):
        monitor = InvariantMonitor()
        monitor.record("query_submitted", txn_id=4)
        with pytest.raises(InvariantViolation, match="submitted twice"):
            monitor.record("query_submitted", txn_id=4)

    def test_verify_complete_flags_open_transactions(self):
        monitor = InvariantMonitor()
        monitor.record("query_submitted", txn_id=2)
        assert monitor.open_transactions == 1
        with pytest.raises(InvariantViolation, match="never reached"):
            monitor.verify_complete(0.0)

    def test_verify_complete_checks_profit_conservation(self):
        monitor = InvariantMonitor()
        monitor.record("query_submitted", txn_id=2)
        monitor.record("query_committed", txn_id=2, profit=10.0)
        monitor.verify_complete(10.0)
        with pytest.raises(InvariantViolation, match="out of balance"):
            monitor.verify_complete(11.0)

    def test_disabled_monitor_is_a_no_op(self):
        monitor = InvariantMonitor(enabled=False)
        monitor.record("query_committed", txn_id=1)  # would violate
        monitor.verify_complete(123.0)
        assert monitor.events_seen == 0

    def test_violation_carries_event_trace(self):
        monitor = InvariantMonitor(history=4)
        monitor.record("update_submitted", txn_id=1)
        try:
            monitor.record("query_committed", txn_id=2)
        except InvariantViolation as exc:
            assert len(exc.trace) == 2
            assert "most recent events" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected InvariantViolation")
