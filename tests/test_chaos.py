"""The chaos harness: incident sampling, shrinking, and the search loop.

The harness is only useful if it is (a) deterministic — same master seed,
same schedules, same verdicts, same artifact bytes — and (b) *able to
see*: the planted-bug meta-test arms a deliberately broken heal re-sync
and requires the invariant oracle to catch it and the shrinker to
localise it to a minimal incident list.
"""

import dataclasses
import json

import pytest

from repro.cluster import portal as portal_module
from repro.experiments.chaos import chaos_search
from repro.experiments.config import ExperimentConfig
from repro.faults import (CRASH, DELAY_UPDATES, DROP_UPDATES,
                          INCIDENT_KINDS, SLOW_REPLICA, FaultIncident,
                          FaultPlan, expand_incidents, sample_incidents,
                          shrink_incidents)
from repro.sim.rng import StreamRegistry

HORIZON_MS = 60_000.0


def sample(seed=5, n_replicas=3, horizon=HORIZON_MS, mean=4.0):
    rng = StreamRegistry(seed).stream("chaos.schedule-0")
    return sample_incidents(rng, n_replicas, horizon, mean_incidents=mean)


# ---------------------------------------------------------------------------
# FaultIncident + sampler
# ---------------------------------------------------------------------------
class TestFaultIncident:
    def test_round_trips_through_dict(self):
        incident = FaultIncident(SLOW_REPLICA, 1, 100.0, 500.0,
                                 magnitude=4.0)
        assert FaultIncident.from_dict(incident.as_dict()) == incident

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultIncident("meteor", 0, 0.0, 100.0)

    def test_events_expand_to_valid_plans(self):
        # Every kind individually expands into a plan the condition
        # machine accepts.
        for kind in INCIDENT_KINDS:
            magnitude = {SLOW_REPLICA: 4.0, DELAY_UPDATES: 250.0}.get(
                kind, 1.0)
            incident = FaultIncident(kind, 0, 1_000.0, 2_000.0,
                                     magnitude=magnitude)
            plan = expand_incidents([incident])
            assert isinstance(plan, FaultPlan)
            assert len(plan) >= 1


class TestSampler:
    def test_deterministic_for_a_given_stream(self):
        assert sample() == sample()

    def test_different_seeds_differ(self):
        assert sample(seed=5) != sample(seed=6)

    def test_incidents_fit_horizon_and_cluster(self):
        incidents = sample()
        assert incidents, "sampler produced an empty schedule"
        for incident in incidents:
            assert 0.0 <= incident.at_ms < HORIZON_MS
            assert incident.end_ms <= HORIZON_MS
            assert 0 <= incident.replica < 3
            assert incident.kind in INCIDENT_KINDS

    def test_per_replica_incidents_do_not_overlap(self):
        incidents = sample(mean=8.0)
        by_replica = {}
        for incident in incidents:
            by_replica.setdefault(incident.replica, []).append(incident)
        for mine in by_replica.values():
            mine.sort(key=lambda i: i.at_ms)
            for earlier, later in zip(mine, mine[1:]):
                assert earlier.end_ms <= later.at_ms

    def test_any_subset_expands_to_a_valid_plan(self):
        # Shrinking relies on this: incident granularity means every
        # subset of a sampled schedule is itself a well-formed plan.
        incidents = sample(mean=6.0)
        for start in range(len(incidents)):
            subset = incidents[start::2]
            expand_incidents(subset)  # must not raise


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------
class TestShrinker:
    def _schedule(self):
        return [
            FaultIncident(SLOW_REPLICA, 0, 1_000.0, 2_000.0, magnitude=4.0),
            FaultIncident(DROP_UPDATES, 1, 2_000.0, 3_000.0),
            FaultIncident(CRASH, 2, 5_000.0, 1_000.0),
            FaultIncident(DROP_UPDATES, 0, 8_000.0, 2_000.0),
            FaultIncident(SLOW_REPLICA, 2, 9_000.0, 1_500.0, magnitude=2.0),
        ]

    def test_shrinks_to_the_single_culprit(self):
        culprit = self._schedule()[1]
        result = shrink_incidents(
            self._schedule(),
            lambda candidate: culprit in candidate)
        assert list(result.incidents) == [culprit]
        assert result.removed == 4

    def test_narrows_durations(self):
        culprit = self._schedule()[3]
        result = shrink_incidents(
            self._schedule(),
            lambda candidate: any(
                i.kind == DROP_UPDATES and i.replica == 0
                and i.duration_ms >= 100.0 for i in candidate))
        assert len(result.incidents) == 1
        assert result.incidents[0].duration_ms < culprit.duration_ms
        assert result.narrowed > 0

    def test_respects_oracle_budget(self):
        calls = []
        full = len(self._schedule())
        result = shrink_incidents(
            self._schedule(),
            # Only the untouched schedule reproduces: no candidate ever
            # succeeds, so every check burns budget.
            lambda candidate: calls.append(1) or len(candidate) == full,
            max_checks=5)
        assert result.checks <= 5
        assert len(calls) <= 5
        assert result.exhausted

    def test_pair_culprit_keeps_both(self):
        schedule = self._schedule()
        pair = (schedule[0], schedule[2])
        result = shrink_incidents(
            schedule,
            lambda candidate: all(i in candidate for i in pair))
        assert set(result.incidents) == set(pair)


# ---------------------------------------------------------------------------
# The search loop (short horizon keeps oracle runs cheap)
# ---------------------------------------------------------------------------
def search(tmp_path, **kwargs):
    config = ExperimentConfig(scale="smoke", run_seed=3)
    defaults = dict(seeds=2, policies=("QUTS",), n_replicas=2,
                    horizon_ms=10_000.0, out_dir=tmp_path,
                    shrink_budget=12, mean_incidents=2.0)
    defaults.update(kwargs)
    return chaos_search(config, **defaults)


class TestChaosSearch:
    def test_clean_runs_produce_no_artifacts(self, tmp_path):
        rows = search(tmp_path)
        assert len(rows) == 2  # 2 seeds x 1 policy
        assert not any(row["failed"] for row in rows)
        assert list(tmp_path.glob("*.json")) == []

    def test_search_is_deterministic(self, tmp_path):
        first = search(tmp_path / "a")
        second = search(tmp_path / "b")
        assert first == second

    def test_planted_bug_is_caught_and_shrunk(self, tmp_path):
        rows = search(tmp_path, planted_bug=True, seeds=1)
        failing = [row for row in rows if row["failed"]]
        assert failing, "the oracle missed the planted re-sync bug"
        row = failing[0]
        # The shrinker localised the failure to fewer incidents than
        # the sampled schedule contained.
        assert row["shrunk_incidents"] <= row["incidents"]
        artifact = json.loads(
            (tmp_path / "chaos_repro_seed0_QUTS.json").read_text())
        assert artifact["schema"] == "repro.chaos/1"
        assert "re-sync" in artifact["violation"] or \
            "gap" in artifact["violation"]
        # The shrunk plan must include a drop window — the only kind
        # the planted bug can break.
        kinds = {row["kind"] for row in artifact["fault_plan"]}
        assert DROP_UPDATES in kinds
        # The flag is restored even though the search armed it.
        assert portal_module.PLANTED_RESYNC_BUG is False

    def test_planted_bug_artifact_bytes_are_deterministic(self, tmp_path):
        search(tmp_path / "a", planted_bug=True, seeds=1)
        search(tmp_path / "b", planted_bug=True, seeds=1)
        name = "chaos_repro_seed0_QUTS.json"
        assert (tmp_path / "a" / name).read_bytes() == \
            (tmp_path / "b" / name).read_bytes()

    def test_shrunk_artifact_replays_to_the_same_violation(self, tmp_path):
        search(tmp_path, planted_bug=True, seeds=1)
        artifact = json.loads(
            (tmp_path / "chaos_repro_seed0_QUTS.json").read_text())
        # Round-trip the embedded plan; it must still validate.
        plan = FaultPlan.from_dicts(artifact["fault_plan"])
        assert len(plan) >= 1

    def test_worker_count_does_not_change_rows_or_artifacts(self, tmp_path):
        sequential = search(tmp_path / "a", planted_bug=True)
        pooled = search(tmp_path / "b", planted_bug=True, workers=2)
        strip = [{k: v for k, v in row.items() if k != "artifact"}
                 for row in sequential]
        assert strip == [{k: v for k, v in row.items() if k != "artifact"}
                         for row in pooled]
        names = sorted(p.name for p in (tmp_path / "a").glob("*.json"))
        assert names == sorted(p.name
                               for p in (tmp_path / "b").glob("*.json"))
        for name in names:
            assert (tmp_path / "a" / name).read_bytes() == \
                (tmp_path / "b" / name).read_bytes()
