"""Unit + property tests for the QUTS two-level scheduler."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.transactions import Query, Update
from repro.qc.contracts import QualityContract
from repro.scheduling.quts import QUTSScheduler, optimal_rho
from repro.sim import Environment
from repro.sim.rng import StreamRegistry


def query(at=0.0, qosmax=10.0, qodmax=10.0, rtmax=50.0):
    return Query(arrival_time=at, exec_time=5.0, items=("A",),
                 qc=QualityContract.step(qosmax, rtmax, qodmax, 1.0))


def update(at=0.0, item="A"):
    return Update(arrival_time=at, exec_time=1.0, item=item)


def bound_scheduler(**kwargs):
    scheduler = QUTSScheduler(**kwargs)
    env = Environment()
    scheduler.bind(env, StreamRegistry(0))
    return env, scheduler


class TestOptimalRho:
    def test_equation_4_examples(self):
        # QOSmax = QODmax -> rho = 1 (0.5 + 0.5).
        assert optimal_rho(1.0, 1.0) == 1.0
        # 1:5 QoS:QoD -> 0.1 + 0.5 = 0.6 (the Figure 9d low phase).
        assert optimal_rho(1.0, 5.0) == pytest.approx(0.6)
        # QoS-heavy clamps at 1.
        assert optimal_rho(5.0, 1.0) == 1.0

    def test_zero_qod_gives_one(self):
        assert optimal_rho(3.0, 0.0) == 1.0

    def test_minimum_is_half(self):
        """§4.1: 'the minimal value of rho is actually 0.5'."""
        assert optimal_rho(0.0, 100.0) == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            optimal_rho(-1.0, 1.0)

    @given(st.floats(min_value=0.0, max_value=1e6),
           st.floats(min_value=1e-6, max_value=1e6))
    @settings(max_examples=200)
    def test_rho_in_half_one(self, qos, qod):
        rho = optimal_rho(qos, qod)
        assert 0.5 <= rho <= 1.0

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=200)
    def test_maximises_model_profit(self, qos, qod):
        """Eq. 4 really is the argmax of Eq. 3 over [0, 1]."""
        rho_star = optimal_rho(qos, qod)

        def profit(rho):
            return qos * rho + qod * rho * (1.0 - rho)

        best = profit(rho_star)
        for step in range(101):
            rho = step / 100.0
            assert profit(rho) <= best + 1e-9


class TestParameters:
    def test_defaults_match_table3(self):
        scheduler = QUTSScheduler()
        assert scheduler.tau == 10.0
        assert scheduler.omega == 1000.0

    @pytest.mark.parametrize("kwargs", [
        {"tau": 0.0}, {"omega": -1.0}, {"alpha": 0.0}, {"alpha": 1.5},
        {"initial_rho": -0.1}, {"initial_rho": 1.1},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            QUTSScheduler(**kwargs)


class TestAdaptation:
    def test_rho_moves_toward_qos_heavy(self):
        env, scheduler = bound_scheduler(alpha=0.5, initial_rho=0.5)
        scheduler.submit_query(query(qosmax=50.0, qodmax=1.0))
        env.run(until=1001.0)  # one adaptation period
        assert scheduler.rho > 0.5

    def test_rho_converges_to_formula(self):
        env, scheduler = bound_scheduler(alpha=0.5, initial_rho=0.5,
                                         omega=100.0)

        def feeder(env):
            while True:
                scheduler.submit_query(query(at=env.now, qosmax=10.0,
                                             qodmax=50.0))
                # Drain so the queue does not grow unboundedly.
                scheduler.next_transaction(env.now)
                yield env.timeout(10.0)

        env.process(feeder(env))
        env.run(until=5000.0)
        assert scheduler.rho == pytest.approx(optimal_rho(10.0, 50.0),
                                              abs=0.02)

    def test_rho_unchanged_without_submissions(self):
        env, scheduler = bound_scheduler(initial_rho=0.7)
        env.run(until=3000.0)
        assert scheduler.rho == 0.7
        # ... but the trajectory is still recorded each period.
        assert len(scheduler.rho_series) == 3

    def test_aging_smooths(self):
        """With a small alpha, one period cannot jump rho to the target."""
        env, scheduler = bound_scheduler(alpha=0.1, initial_rho=0.5)
        scheduler.submit_query(query(qosmax=100.0, qodmax=1.0))
        env.run(until=1001.0)
        assert 0.5 < scheduler.rho < 0.6

    def test_fixed_rho_disables_adaptation(self):
        env, scheduler = bound_scheduler(fixed_rho=0.5)
        scheduler.submit_query(query(qosmax=100.0, qodmax=1.0))
        env.run(until=5000.0)
        assert scheduler.rho == 0.5
        assert len(scheduler.rho_series) == 0

    def test_requeue_not_double_counted(self):
        env, scheduler = bound_scheduler(alpha=1.0)
        q = query(qosmax=10.0, qodmax=10.0)
        scheduler.submit_query(q)
        scheduler.requeue(q)  # preemption path must not re-count the QC
        assert scheduler._period_qos_max == 10.0
        assert scheduler._period_qod_max == 10.0


class TestSlotMachine:
    def test_rho_one_always_picks_queries(self):
        env, scheduler = bound_scheduler(fixed_rho=1.0)
        q, u = query(), update()
        scheduler.submit_query(q)
        scheduler.submit_update(u)
        assert scheduler.next_transaction(env.now) is q
        assert scheduler.current_state == "query"

    def test_rho_zero_always_picks_updates(self):
        env, scheduler = bound_scheduler(fixed_rho=0.0)
        q, u = query(), update()
        scheduler.submit_query(q)
        scheduler.submit_update(u)
        assert scheduler.next_transaction(env.now) is u
        assert scheduler.current_state == "update"

    def test_empty_chosen_queue_borrows_other(self):
        env, scheduler = bound_scheduler(fixed_rho=1.0)
        u = update()
        scheduler.submit_update(u)
        assert scheduler.next_transaction(env.now) is u
        # The state flipped to the class actually being served.
        assert scheduler.current_state == "update"

    def test_both_empty_returns_none(self):
        env, scheduler = bound_scheduler()
        assert scheduler.next_transaction(env.now) is None

    def test_quantum_is_remaining_slot(self):
        env, scheduler = bound_scheduler(fixed_rho=1.0, tau=10.0)
        q = query()
        scheduler.submit_query(q)
        scheduler.next_transaction(0.0)  # draws a slot [0, 10)
        assert scheduler.quantum(q, 4.0) == pytest.approx(6.0)

    def test_expired_slot_redraws_before_granting(self):
        """Regression: an expired slot used to grant a full fresh ``tau``
        without re-drawing the owner, letting one class overrun its time
        share.  Now the owner is re-drawn at the boundary."""
        env, scheduler = bound_scheduler(fixed_rho=1.0, tau=10.0)
        q = query()
        scheduler.submit_query(q)
        scheduler.next_transaction(0.0)
        # Slot expired exactly at the boundary: redraw (rho=1 -> query
        # again), fresh slot [10, 20).
        assert scheduler.quantum(q, 10.0) == pytest.approx(10.0)
        # Mid-slot of the re-drawn slot: only the remainder is granted.
        assert scheduler.quantum(q, 12.0) == pytest.approx(8.0)

    def test_expired_slot_lost_to_other_class_gives_zero_quantum(self):
        """If the re-drawn slot belongs to the other class, the running
        transaction gets a zero quantum (it must yield the CPU)."""
        env, scheduler = bound_scheduler(fixed_rho=0.0, tau=10.0)
        q = query()
        scheduler.submit_query(q)
        scheduler._switch_state("query", 0.0)  # force a query slot
        assert scheduler.quantum(q, 15.0) == 0.0
        assert scheduler.current_state == "update"
        # The scheduler's next decision then serves the slot owner.
        u = update()
        scheduler.submit_update(u)
        assert scheduler.next_transaction(16.0) is u

    def test_quantum_positive_within_slot(self):
        env, scheduler = bound_scheduler(fixed_rho=1.0, tau=10.0)
        q = query()
        scheduler.submit_query(q)
        scheduler.next_transaction(0.0)
        for now in (0.0, 4.0, 9.999):
            assert scheduler.quantum(q, now) > 0.0

    def test_never_preempts_mid_slot(self):
        env, scheduler = bound_scheduler()
        assert not scheduler.preempts(query(), update())
        assert not scheduler.preempts(update(), query())

    def test_state_redrawn_after_tau(self):
        env, scheduler = bound_scheduler(fixed_rho=0.5, tau=10.0)
        for k in range(50):
            scheduler.submit_query(query(at=0.0))
            scheduler.submit_update(update(at=0.0))
        states = set()
        now = 0.0
        for __ in range(40):
            txn = scheduler.next_transaction(now)
            assert txn is not None
            states.add(scheduler.current_state)
            now += 10.0
        # With rho=0.5 and both queues full, both states must occur.
        assert states == {"query", "update"}

    def test_slot_time_share_tracks_rho_under_saturation(self):
        """With both classes saturated, the fraction of CPU time spent in
        query slots must stay within ~ρ ± tolerance (the quantum fix:
        expired slots redraw instead of granting a free full τ)."""
        env, scheduler = bound_scheduler(fixed_rho=0.7, tau=10.0)
        scheduler.submit_query(query())
        scheduler.submit_update(update())
        now = query_ms = total_ms = 0.0
        for __ in range(4000):
            txn = scheduler.next_transaction(now)
            grant = scheduler.quantum(txn, now)
            scheduler.requeue(txn)  # keep both queues saturated
            if grant <= 0:
                continue  # lost the re-drawn slot; decide again
            if txn.is_query:
                query_ms += grant
            total_ms += grant
            now += grant
        assert query_ms / total_ms == pytest.approx(0.7, abs=0.05)

    def test_quantum_redraw_preserves_time_share(self):
        """A transaction that keeps arriving at expired slot boundaries
        wins the redraw with probability ρ — it cannot monopolise the CPU
        the way the old grant-a-fresh-τ behaviour allowed."""
        env, scheduler = bound_scheduler(fixed_rho=0.6, tau=10.0)
        q = query()
        scheduler.submit_query(q)
        scheduler.next_transaction(0.0)
        now = scheduler._state_until  # always arrive exactly at a boundary
        wins = 0
        trials = 3000
        for __ in range(trials):
            grant = scheduler.quantum(q, now)
            if grant > 0:
                wins += 1
                now += grant  # ran to the end of its slot
            else:
                now = scheduler._state_until  # other class used the slot
        assert wins / trials == pytest.approx(0.6, abs=0.05)

    def test_xi_draw_respects_rho_statistically(self):
        env, scheduler = bound_scheduler(fixed_rho=0.8, tau=10.0)
        picks = {"query": 0, "update": 0}
        now = 0.0
        for k in range(2000):
            scheduler.submit_query(query(at=now))
            scheduler.submit_update(update(at=now))
            txn = scheduler.next_transaction(now)
            picks["query" if txn.is_query else "update"] += 1
            now += 10.0
        fraction = picks["query"] / sum(picks.values())
        assert fraction == pytest.approx(0.8, abs=0.03)


class TestLockPriority:
    def test_slot_owner_wins(self):
        env, scheduler = bound_scheduler(fixed_rho=1.0)
        q, u = query(), update()
        scheduler.submit_query(q)
        scheduler.next_transaction(0.0)  # query state
        assert scheduler.has_lock_priority(q, u)
        assert not scheduler.has_lock_priority(u, q)

    def test_same_class_requester_wins(self):
        env, scheduler = bound_scheduler(fixed_rho=1.0)
        q1, q2 = query(), query()
        scheduler.submit_query(q1)
        scheduler.next_transaction(0.0)
        assert scheduler.has_lock_priority(q1, q2)
