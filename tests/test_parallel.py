"""Unit tests for the deterministic parallel task runner."""

import pathlib
import time

import pytest

from repro.parallel import (WORKERS_ENV, Task, TaskTimeoutError,
                            resolve_workers, run_tasks, task_seed)
from repro.sim.rng import StreamRegistry


# ----------------------------------------------------------------------
# Worker functions (module-level so they pickle)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _boom(message):
    raise ValueError(message)


def _wedge_once(marker_path, sleep_s):
    """Hang on the first execution; return fast once the marker exists."""
    marker = pathlib.Path(marker_path)
    if marker.exists():
        return "recovered"
    marker.write_text("wedged")
    time.sleep(sleep_s)
    return "slow"


def _always_wedge(sleep_s):
    time.sleep(sleep_s)
    return "slow"


class TestResolveWorkers:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(2) == 2

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(bad)


class TestTaskSeed:
    def test_matches_registry_spawn_chain(self):
        assert (task_seed(7, "policy/seed=3")
                == StreamRegistry(7).spawn("policy/seed=3").master_seed)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {task_seed(7, f"task-{k}") for k in range(128)}
        assert len(seeds) == 128

    def test_independent_of_call_order(self):
        forward = [task_seed(1, f"k{i}") for i in range(8)]
        backward = [task_seed(1, f"k{i}") for i in reversed(range(8))]
        assert forward == list(reversed(backward))


class TestRunTasks:
    def test_sequential_and_parallel_agree_in_order(self):
        tasks = [Task(_square, (k,), key=f"sq{k}") for k in range(20)]
        expected = [k * k for k in range(20)]
        assert run_tasks(tasks, 1) == expected
        assert run_tasks(tasks, 4) == expected

    def test_kwargs_are_forwarded(self):
        assert run_tasks([Task(_square, kwargs={"x": 3})], 1) == [9]
        assert run_tasks([Task(_square, kwargs={"x": 3}),
                          Task(_square, kwargs={"x": 4})], 2) == [9, 16]

    def test_empty_task_list(self):
        assert run_tasks([], 4) == []

    def test_exception_propagates_sequential(self):
        with pytest.raises(ValueError, match="pop"):
            run_tasks([Task(_boom, ("pop",))], 1)

    def test_exception_propagates_parallel(self):
        tasks = [Task(_square, (1,)), Task(_boom, ("pop",))]
        with pytest.raises(ValueError, match="pop"):
            run_tasks(tasks, 2)

    def test_timeout_retry_recovers_wedged_task(self, tmp_path):
        marker = tmp_path / "wedged.marker"
        tasks = [Task(_square, (2,), key="fast"),
                 Task(_wedge_once, (str(marker), 30.0), key="wedge")]
        assert run_tasks(tasks, 2, timeout_s=3.0, retries=2) \
            == [4, "recovered"]

    def test_timeout_exhausted_raises(self):
        tasks = [Task(_square, (2,), key="fast"),
                 Task(_always_wedge, (30.0,), key="wedge")]
        with pytest.raises(TaskTimeoutError, match="wedge"):
            run_tasks(tasks, 2, timeout_s=0.5, retries=1)
