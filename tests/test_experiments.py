"""Tests for the experiment harness (config, runner, figure drivers).

Figure drivers run against a tiny 20-second trace so the whole module
stays fast; shape assertions live in the integration tests and benches.
"""

import pytest

from repro.experiments.config import (SCALES, ExperimentConfig, chosen_scale,
                                      table4_grid, table4_rows)
from repro.experiments.figures import (fig1, fig10, fig6, fig7, fig8, fig9)
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import free_qc_source, run_simulation
from repro.experiments.tables import table3, table4
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler, make_scheduler
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec


@pytest.fixture(scope="module")
def tiny_trace():
    return StockWorkloadGenerator(WorkloadSpec().scaled(20_000.0),
                                  master_seed=11).generate()


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(scale="smoke", workload_seed=11)


class TestConfig:
    def test_scales_known(self):
        assert set(SCALES) == {"smoke", "standard", "full"}

    def test_chosen_scale_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert chosen_scale("smoke") == "smoke"

    def test_chosen_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert chosen_scale() == "smoke"

    def test_chosen_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert chosen_scale() == "standard"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            chosen_scale("galactic")

    def test_trace_is_deterministic(self):
        config = ExperimentConfig(scale="smoke", workload_seed=5)
        a, b = config.trace(), config.trace()
        assert a.queries == b.queries


class TestTable4:
    def test_grid_has_nine_points(self):
        grid = table4_grid()
        assert len(grid) == 9
        assert [p for p, __ in grid] == [round(0.1 * k, 1)
                                         for k in range(1, 10)]

    def test_rows_render(self):
        rows = table4_rows()
        assert rows[0]["qodmax"] == "$10 ~ $19"
        assert rows[0]["qosmax"] == "$90 ~ $99"
        assert rows[-1]["qodmax"] == "$90 ~ $99"
        assert table4() == rows


class TestRunner:
    def test_free_source_runs_without_contracts(self, tiny_trace):
        result = run_simulation(make_scheduler("FIFO"), tiny_trace)
        assert result.ledger.total_max == 0.0
        assert result.counters["queries_submitted"] > 0

    def test_conservation_of_queries(self, tiny_trace):
        result = run_simulation(make_scheduler("QH"), tiny_trace,
                                QCFactory.balanced(), master_seed=2)
        c = result.counters
        accounted = (c.get("queries_committed", 0)
                     + c.get("queries_dropped_lifetime", 0)
                     + c.get("queries_unfinished", 0))
        assert accounted == c["queries_submitted"]
        assert c["queries_submitted"] == len(tiny_trace.queries)

    def test_conservation_of_updates(self, tiny_trace):
        result = run_simulation(make_scheduler("QUTS"), tiny_trace,
                                QCFactory.balanced(), master_seed=2)
        c = result.counters
        accounted = (c.get("updates_applied", 0)
                     + c.get("updates_superseded", 0)
                     + c.get("updates_unfinished", 0))
        assert accounted == len(tiny_trace.updates)

    def test_same_seed_reproducible(self, tiny_trace):
        a = run_simulation(make_scheduler("QUTS"), tiny_trace,
                           QCFactory.balanced(), master_seed=3)
        b = run_simulation(make_scheduler("QUTS"), tiny_trace,
                           QCFactory.balanced(), master_seed=3)
        assert a.ledger.total_gained == b.ledger.total_gained
        assert a.counters == b.counters

    def test_metadata_recorded(self, tiny_trace):
        result = run_simulation(make_scheduler("FIFO"), tiny_trace,
                                master_seed=9, drain_ms=1_000.0)
        assert result.metadata["master_seed"] == 9
        assert result.metadata["drain_ms"] == 1_000.0
        assert result.duration == tiny_trace.duration_ms + 1_000.0

    def test_rho_series_only_for_quts(self, tiny_trace):
        quts = run_simulation(QUTSScheduler(), tiny_trace,
                              QCFactory.balanced())
        fifo = run_simulation(make_scheduler("FIFO"), tiny_trace,
                              QCFactory.balanced())
        assert quts.rho_series is not None
        assert fifo.rho_series is None


class TestFigureDrivers:
    def test_fig1_rows(self, tiny_config, tiny_trace):
        rows = fig1(tiny_config, trace=tiny_trace)
        assert [r["policy"] for r in rows] == ["FIFO", "FIFO-UH", "FIFO-QH"]
        for row in rows:
            assert row["response_time_ms"] > 0
            assert row["staleness_uu"] >= 0

    def test_fig6_shapes(self, tiny_config, tiny_trace):
        data = fig6(tiny_config, trace=tiny_trace)
        assert set(data) == {"step", "linear"}
        for rows in data.values():
            assert [r["policy"] for r in rows] == [
                "FIFO", "UH", "QH", "QUTS"]
            for row in rows:
                assert 0.0 <= row["total%"] <= 1.0

    def test_fig9_phase_rho(self, tiny_config, tiny_trace):
        data = fig9(tiny_config, trace=tiny_trace)
        assert data["phase_rho"]
        assert data["rho_series"] is not None
        assert len(data["gained_total"]) > 0

    def test_fig7_spectrum_structure(self, tiny_config, tiny_trace):
        rows = fig7(tiny_config, trace=tiny_trace)
        assert [row["QODmax%"] for row in rows] == [
            round(0.1 * k, 1) for k in range(1, 10)]
        # QOSmax% falls as QODmax% rises (Table 4 construction).
        shares = [row["QOSmax%"] for row in rows]
        assert all(a > b for a, b in zip(shares, shares[1:]))

    def test_fig8_improvements_present(self, tiny_config, tiny_trace):
        data = fig8(tiny_config, trace=tiny_trace)
        assert set(data) == {"UH", "QH", "QUTS", "improvements"}
        assert len(data["improvements"]) == 9
        for row in data["improvements"]:
            assert "QUTS_vs_UH_%" in row and "QUTS_vs_QH_%" in row

    def test_fig8_policy_subset(self, tiny_config, tiny_trace):
        data = fig8(tiny_config, trace=tiny_trace, policies=("QH",))
        assert set(data) == {"QH"}  # no improvements without all three

    def test_fig10_sweep_structure(self, tiny_config, tiny_trace):
        data = fig10(tiny_config, trace=tiny_trace,
                     omegas=(500.0, 5_000.0), taus=(5.0, 50.0))
        assert [row["omega_ms"] for row in data["omega"]] == [500.0,
                                                              5_000.0]
        assert [row["tau_ms"] for row in data["tau"]] == [5.0, 50.0]
        for row in data["omega"] + data["tau"]:
            assert 0.0 <= row["total%"] <= 1.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="T")

    def test_format_table_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series_renders(self):
        text = format_series([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 0.5, 1.5],
                             title="S", width=10, height=4)
        assert text.splitlines()[0] == "S"
        assert "*" in text

    def test_format_series_empty(self):
        assert "(empty series)" in format_series([], [], title="S")

    def test_save_csv_roundtrip(self, tmp_path):
        import csv

        from repro.experiments.report import save_csv
        rows = [{"a": 1.5, "b": "x"}, {"a": 2.5, "b": "y"}]
        target = tmp_path / "out.csv"
        save_csv(rows, target)
        with open(target, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded == [{"a": "1.5", "b": "x"}, {"a": "2.5", "b": "y"}]

    def test_save_csv_empty(self, tmp_path):
        from repro.experiments.report import save_csv
        target = tmp_path / "empty.csv"
        save_csv([], target)
        assert target.read_text() == ""

    def test_save_csv_column_subset(self, tmp_path):
        from repro.experiments.report import save_csv
        target = tmp_path / "subset.csv"
        save_csv([{"a": 1, "b": 2}], target, columns=["b"])
        assert target.read_text().splitlines()[0] == "b"
