"""Edge-case tests for the database server: lock blocking, stale
interrupts, the queue sampler, and finalize with in-flight state."""

import pytest

from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, TxnStatus, Update
from repro.metrics.profit import ProfitLedger
from repro.qc.contracts import QualityContract
from repro.scheduling import make_qh, make_uh
from repro.scheduling.base import Scheduler
from repro.scheduling.dual import DualQueueScheduler
from repro.sim import Environment
from repro.sim.rng import StreamRegistry


def step_qc(qosmax=10.0, rtmax=50.0, qodmax=10.0, lifetime=1e6):
    return QualityContract.step(qosmax, rtmax, qodmax, 1.0,
                                lifetime=lifetime)


def at(env, time, fn, *args):
    def proc(env):
        if time > env.now:
            yield env.timeout(time - env.now)
        fn(*args)
        return None
        yield  # pragma: no cover

    env.process(proc(env))


def build(scheduler, **config_kwargs):
    env = Environment()
    ledger = ProfitLedger()
    config = ServerConfig(class_switch_overhead=0.0, **config_kwargs)
    server = DatabaseServer(env, Database(), scheduler, ledger,
                            StreamRegistry(0), config=config)
    return env, server, ledger


class _BlockingUH(DualQueueScheduler):
    """UH whose lock predicate makes *everyone* block instead of
    restarting — exercises the server's BLOCK / unblock path."""

    name = "UH-blocking"

    def __init__(self) -> None:
        super().__init__("update")

    def has_lock_priority(self, requester, holder):
        return False


class TestBlockingPath:
    def test_blocked_update_waits_for_lock_release(self):
        env, server, ledger = build(_BlockingUH())
        # Query takes read lock on A; a conflicting update arrives and,
        # having no priority, must block until the query commits.
        query = Query(0.0, 7.0, ("A",), step_qc())
        update = Update(1.0, 2.0, "A")
        at(env, 0.0, server.submit_query, query)
        at(env, 1.0, server.submit_update, update)
        env.run(until=100.0)
        assert query.status is TxnStatus.COMMITTED
        assert update.status is TxnStatus.COMMITTED
        assert query.restarts == 0  # never restarted: requester blocked
        # The update preempted the query's CPU (UH) but then blocked on
        # the lock; the query resumed, committed, then the update ran.
        assert update.finish_time > query.finish_time
        assert server.lock_stats["blocks_caused"] >= 1

    def test_blocked_txn_unfinished_at_horizon(self):
        env, server, ledger = build(_BlockingUH())
        query = Query(0.0, 7.0, ("A",), step_qc())
        update = Update(1.0, 2.0, "A")
        at(env, 0.0, server.submit_query, query)
        at(env, 1.0, server.submit_update, update)
        env.run(until=3.0)  # stop while the update is blocked
        server.finalize()
        assert ledger.counters.value("updates_unfinished") == 1


class TestStaleInterrupts:
    def test_superseded_interrupt_for_other_txn_is_ignored(self):
        """An update is superseded while a *different* transaction runs;
        the running one must not be disturbed."""
        env, server, ledger = build(make_qh())
        query = Query(0.0, 7.0, ("B",), step_qc())
        old = Update(1.0, 2.0, "A", value=1.0)
        new = Update(2.0, 2.0, "A", value=2.0)
        at(env, 0.0, server.submit_query, query)
        at(env, 1.0, server.submit_update, old)
        at(env, 2.0, server.submit_update, new)
        env.run(until=100.0)
        assert query.status is TxnStatus.COMMITTED
        assert query.finish_time == pytest.approx(7.0)
        assert query.restarts == 0

    def test_preempt_interrupt_revalidated(self):
        """A preemption raised for an arrival that dies (superseded)
        before delivery must not suspend the running query."""
        env, server, __ = build(make_uh())
        query = Query(0.0, 7.0, ("X",), step_qc())
        at(env, 0.0, server.submit_query, query)
        # Two updates on the same item at the same instant: the first
        # triggers a preempt-interrupt but is superseded by the second in
        # the same timestamp; the executor re-validates and keeps going
        # until the (second) valid preemption is handled.
        at(env, 3.0, server.submit_update, Update(3.0, 2.0, "A", value=1.0))
        at(env, 3.0, server.submit_update, Update(3.0, 2.0, "A", value=2.0))
        env.run(until=100.0)
        assert query.status is TxnStatus.COMMITTED
        # Only one surviving update ran: query done at 7 + 2 = 9.
        assert query.finish_time == pytest.approx(9.0)


class TestQueueSampler:
    def test_samples_recorded(self):
        env, server, __ = build(make_uh(), queue_sample_every=5.0)
        for k in range(4):
            at(env, 0.0, server.submit_query,
               Query(0.0, 7.0, (f"Q{k}",), step_qc()))
        env.run(until=21.0)
        assert len(server.queue_lengths) == 4
        # Queue length decreases as queries complete.
        assert server.queue_lengths.values[0] >= \
            server.queue_lengths.values[-1]


class TestIdleBehaviour:
    def test_server_idles_and_wakes(self):
        env, server, ledger = build(make_uh())
        at(env, 50.0, server.submit_update, Update(50.0, 2.0, "A"))
        env.run(until=100.0)
        assert ledger.counters.value("updates_applied") == 1

    def test_empty_run_finalize_is_clean(self):
        env, server, ledger = build(make_uh())
        env.run(until=10.0)
        server.finalize()
        assert ledger.counters.as_dict() == {}


class TestLockStats:
    def test_lock_stats_exposed(self):
        env, server, __ = build(make_uh())
        at(env, 0.0, server.submit_query,
           Query(0.0, 7.0, ("A",), step_qc()))
        at(env, 3.0, server.submit_update, Update(3.0, 2.0, "A"))
        env.run(until=100.0)
        stats = server.lock_stats
        assert stats["conflicts"] >= 1
        assert stats["restarts_caused"] >= 1
        assert "blocks_caused" in stats


class TestNotifyHookDefault:
    def test_base_scheduler_hook_is_noop(self):
        scheduler = Scheduler()
        scheduler.notify_query_finished(
            Query(0.0, 7.0, ("A",), step_qc()))  # must not raise
