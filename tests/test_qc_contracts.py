"""Unit tests for QualityContract composition and builders."""

import pytest

from repro.qc.contracts import (DEFAULT_LIFETIME_MS, CompositionMode,
                                QualityContract)
from repro.qc.functions import StepProfit, ZeroProfit


class TestBuilders:
    def test_step_builder_parameters(self):
        qc = QualityContract.step(10.0, 50.0, 20.0, 1.0)
        assert qc.qos_max == 10.0
        assert qc.qod_max == 20.0
        assert qc.total_max == 30.0
        assert qc.rt_max == 50.0
        assert qc.uu_max == 1.0
        assert qc.lifetime == DEFAULT_LIFETIME_MS

    def test_linear_builder_parameters(self):
        qc = QualityContract.linear(2.0, 50.0, 1.0, 2.0)
        assert qc.qos_max == 2.0
        assert qc.qod_max == 1.0
        # Figure 3: qos decays to 0 at rtmax, qod at uumax.
        qos, qod = qc.evaluate(25.0, 1.0)
        assert qos == pytest.approx(1.0)
        assert qod == pytest.approx(0.5)

    def test_zero_maxima_become_zero_profit(self):
        qc = QualityContract.step(0.0, 50.0, 0.0, 1.0)
        assert isinstance(qc.qos, ZeroProfit)
        assert isinstance(qc.qod, ZeroProfit)

    def test_free_contract(self):
        qc = QualityContract.free()
        assert qc.total_max == 0.0
        assert qc.evaluate(1.0, 1.0) == (0.0, 0.0)

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            QualityContract(ZeroProfit(), ZeroProfit(), lifetime=0.0)


class TestFigure2Example:
    """Figure 2: qosmax=$1, rtmax=50ms, qodmax=$2, uumax=1."""

    def test_step_example(self):
        qc = QualityContract.step(1.0, 50.0, 2.0, 1.0)
        assert qc.evaluate(30.0, 0.0) == (1.0, 2.0)   # fast & fresh
        assert qc.evaluate(60.0, 0.0) == (0.0, 2.0)   # late & fresh
        assert qc.evaluate(30.0, 1.0) == (1.0, 0.0)   # fast & stale
        assert qc.evaluate(60.0, 2.0) == (0.0, 0.0)   # late & stale


class TestFigure3Example:
    """Figure 3: qosmax=$2, rtmax=50ms, qodmax=$1, uumax=2 (linear)."""

    def test_linear_example(self):
        qc = QualityContract.linear(2.0, 50.0, 1.0, 2.0)
        qos, qod = qc.evaluate(0.0, 0.0)
        assert (qos, qod) == (2.0, 1.0)
        qos, qod = qc.evaluate(50.0, 2.0)
        assert (qos, qod) == (0.0, 0.0)


class TestComposition:
    def test_qos_independent_pays_qod_when_late(self):
        qc = QualityContract.step(10.0, 50.0, 20.0, 1.0,
                                  mode=CompositionMode.QOS_INDEPENDENT)
        qos, qod = qc.evaluate(100.0, 0.0)  # missed deadline, fresh data
        assert qos == 0.0
        assert qod == 20.0

    def test_qos_dependent_voids_qod_when_late(self):
        qc = QualityContract.step(10.0, 50.0, 20.0, 1.0,
                                  mode=CompositionMode.QOS_DEPENDENT)
        qos, qod = qc.evaluate(100.0, 0.0)
        assert qos == 0.0
        assert qod == 0.0

    def test_qos_dependent_pays_when_on_time(self):
        qc = QualityContract.step(10.0, 50.0, 20.0, 1.0,
                                  mode=CompositionMode.QOS_DEPENDENT)
        assert qc.evaluate(10.0, 0.0) == (10.0, 20.0)

    def test_custom_functions(self):
        qc = QualityContract(StepProfit(5.0, 10.0),
                             StepProfit(3.0, 2.0, inclusive=False))
        assert qc.qos_max == 5.0
        assert qc.uu_max == 2.0
        assert qc.evaluate(10.0, 1.9) == (5.0, 3.0)
