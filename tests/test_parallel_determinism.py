"""Parallel sweeps must be *bit-identical* to sequential ones.

The determinism contract of :mod:`repro.parallel`: every task derives its
whole random universe from its arguments, so fanning a sweep out over
worker processes cannot change any result.  This is exercised end-to-end
here — two policies × three seeds, run once sequentially and once with
four workers, compared on byte-serialised profit aggregates and the full
QUTS ρ trajectory.
"""

import os
import pickle

import pytest

from repro.experiments.figures import _policy_run_task
from repro.parallel import Task, run_tasks
from repro.qc.generator import QCFactory
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

POLICIES = ("QH", "QUTS")
#: CI sweeps this base across a seed matrix; three consecutive seeds per
#: invocation keep a single run affordable.
_SEED_BASE = int(os.environ.get("REPRO_DETERMINISM_SEED_BASE", "1"))
SEEDS = tuple(range(_SEED_BASE, _SEED_BASE + 3))


def _fingerprint(result) -> bytes:
    """Byte-serialise everything a comparison could hinge on."""
    rho = (None if result.rho_series is None
           else tuple(result.rho_series.items()))
    return pickle.dumps((
        result.scheduler_name,
        result.qos_percent,
        result.qod_percent,
        result.total_percent,
        result.mean_response_time,
        result.mean_staleness,
        sorted(result.counters.items()),
        rho,
    ))


@pytest.fixture(scope="module")
def sweep_tasks():
    spec = WorkloadSpec().scaled(20_000.0)
    trace = StockWorkloadGenerator(spec, master_seed=7).generate()
    factory = QCFactory.balanced()
    return [Task(_policy_run_task, (policy, trace, factory, seed),
                 key=f"{policy}/seed={seed}")
            for policy in POLICIES for seed in SEEDS]


def test_parallel_sweep_bit_identical(sweep_tasks):
    sequential = run_tasks(sweep_tasks, 1)
    with_pool = run_tasks(sweep_tasks, 4)
    assert len(sequential) == len(with_pool) == len(POLICIES) * len(SEEDS)
    for task, a, b in zip(sweep_tasks, sequential, with_pool):
        assert _fingerprint(a) == _fingerprint(b), task.key


def test_seeds_actually_differentiate_runs(sweep_tasks):
    """Guard against a vacuous pass: distinct seeds must yield distinct
    ledgers (otherwise the bit-identity above proves nothing)."""
    results = run_tasks(sweep_tasks, 1)
    prints = {_fingerprint(result) for result in results}
    assert len(prints) == len(sweep_tasks)


def test_quts_rho_series_survives_pickling(sweep_tasks):
    """The ρ trajectory crosses the process boundary intact."""
    results = run_tasks(sweep_tasks, 2)
    quts = [r for r in results if r.scheduler_name == "QUTS"]
    assert quts and all(r.rho_series is not None and len(r.rho_series) > 0
                        for r in quts)
