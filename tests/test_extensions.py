"""Tests for the beyond-the-paper extensions (DESIGN.md §6):

* the invalidation ablation toggle on the Database;
* alternative QoD metrics (td / vd) feeding the profit evaluation;
* the inherited-QoD update priority (§3.1's discussion, implemented).
"""

import pytest

from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, TxnStatus, Update
from repro.metrics.profit import ProfitLedger
from repro.qc.contracts import QualityContract
from repro.scheduling import (InheritanceQUTSScheduler, InheritedQoDPriority,
                              InterestTable, make_scheduler)
from repro.scheduling.queues import TransactionQueue
from repro.sim import Environment
from repro.sim.rng import StreamRegistry


def step_qc(qosmax=10.0, rtmax=50.0, qodmax=10.0, uumax=1.0):
    return QualityContract.step(qosmax, rtmax, qodmax, uumax)


def query(items=("A",), at=0.0, qodmax=10.0, uumax=1.0):
    return Query(at, 7.0, items, step_qc(qodmax=qodmax, uumax=uumax))


def update(item="A", at=0.0, value=1.0):
    return Update(at, 2.0, item, value=value)


class TestInvalidationToggle:
    def test_disabled_keeps_older_update_alive(self):
        db = Database(invalidation=False)
        old, new = update(at=1.0), update(at=2.0)
        db.register_update(old, now=1.0)
        assert db.register_update(new, now=2.0) is None
        assert old.status is not TxnStatus.DROPPED_SUPERSEDED
        assert old.alive

    def test_disabled_requires_applying_both(self):
        db = Database(invalidation=False)
        old, new = update(at=1.0, value=1.0), update(at=2.0, value=2.0)
        db.register_update(old, now=1.0)
        db.register_update(new, now=2.0)
        db.apply_update(old, now=3.0)
        assert db.item("A").unapplied_updates == 1
        db.apply_update(new, now=4.0)
        assert db.item("A").unapplied_updates == 0
        assert db.read("A") == 2.0

    def test_enabled_is_default(self):
        assert Database().invalidation is True


class TestQoDMetricChoice:
    def _run(self, metric, uumax):
        env = Environment()
        ledger = ProfitLedger()
        server = DatabaseServer(
            env, Database(), make_scheduler("QH"), ledger,
            StreamRegistry(0),
            config=ServerConfig(class_switch_overhead=0.0,
                                qod_metric=metric))

        def scenario(env):
            server.submit_update(update(value=7.0))
            server.submit_query(query(uumax=uumax))
            yield env.timeout(0)

        env.process(scenario(env))
        env.run(until=100.0)
        return server

    def test_td_metric_measures_milliseconds(self):
        # QH: the query commits at ~7 ms while the update is pending, so
        # td ≈ 7 ms.  With uumax (threshold) = 100 ms, QoD still pays.
        server = self._run("td", uumax=100.0)
        committed = server.ledger.counters.value("queries_committed")
        assert committed == 1
        assert server.ledger.qod_gained == 10.0

    def test_td_metric_strict_threshold_fails(self):
        server = self._run("td", uumax=5.0)  # 7 ms staleness >= 5 ms
        assert server.ledger.qod_gained == 0.0

    def test_vd_metric_measures_value_gap(self):
        # Replica 0.0 vs master 7.0 -> vd = 7; threshold 10 pays.
        server = self._run("vd", uumax=10.0)
        assert server.ledger.qod_gained == 10.0

    def test_vd_metric_tight_threshold_fails(self):
        server = self._run("vd", uumax=5.0)
        assert server.ledger.qod_gained == 0.0

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(qod_metric="entropy")


class TestInterestTable:
    def test_register_accumulates_per_item(self):
        table = InterestTable()
        table.register(query(items=("A", "B"), qodmax=10.0))
        table.register(query(items=("A",), qodmax=5.0))
        assert table.value("A") == 15.0
        assert table.value("B") == 10.0
        assert table.value("C") == 0.0

    def test_unregister_retires_interest(self):
        table = InterestTable()
        q1 = query(items=("A",), qodmax=10.0)
        q2 = query(items=("A",), qodmax=5.0)
        table.register(q1)
        table.register(q2)
        table.unregister(q1)
        assert table.value("A") == 5.0
        table.unregister(q2)
        assert table.value("A") == 0.0
        assert table.tracked_items() == 0


class TestInheritedQoDPriority:
    def test_most_wanted_item_first(self):
        table = InterestTable()
        table.register(query(items=("HOT",), qodmax=50.0))
        queue = TransactionQueue(InheritedQoDPriority(table))
        cold = update(item="COLD", at=0.0)
        hot = update(item="HOT", at=1.0)
        queue.push(cold)
        queue.push(hot)
        assert queue.pop() is hot

    def test_fifo_among_equal_interest(self):
        queue = TransactionQueue(InheritedQoDPriority(InterestTable()))
        first, second = update(at=1.0, item="A"), update(at=2.0, item="B")
        queue.push(second)
        queue.push(first)
        # No interest anywhere: insertion order (push order) breaks ties.
        assert queue.pop() is second
        assert queue.pop() is first


class TestInheritanceQUTSEndToEnd:
    def test_interest_wired_through_server(self):
        scheduler = InheritanceQUTSScheduler(fixed_rho=0.0, tau=5.0)
        env = Environment()
        ledger = ProfitLedger()
        server = DatabaseServer(env, Database(), scheduler, ledger,
                                StreamRegistry(0),
                                config=ServerConfig(
                                    class_switch_overhead=0.0))

        def scenario(env):
            # A valuable query on HOT, then updates on COLD (first) and
            # HOT (second).  Inherited priority must run HOT first even
            # though COLD arrived earlier.
            server.submit_query(query(items=("HOT",), qodmax=50.0))
            server.submit_update(update(item="COLD", at=0.0))
            server.submit_update(update(item="HOT", at=0.0))
            yield env.timeout(0)

        env.process(scenario(env))
        env.run(until=200.0)
        hot_item = server.database.item("HOT")
        cold_item = server.database.item("COLD")
        assert hot_item.last_applied_time < cold_item.last_applied_time
        # Interest retired once the query committed.
        assert scheduler.interest.value("HOT") == 0.0

    def test_factory_name(self):
        assert make_scheduler("QUTS-inherit").name == "QUTS-inherit"

    def test_factory_kwargs(self):
        scheduler = make_scheduler("QUTS-inherit", tau=5.0)
        assert scheduler.tau == 5.0
