"""Property-based cross-policy equivalences and kernel soak tests.

These capture facts that must hold for *any* scheduling policy in this
system model, plus stress cases for the kernel.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Update
from repro.experiments.runner import run_simulation
from repro.metrics.profit import ProfitLedger
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.sim import Environment, Interrupt
from repro.sim.rng import StreamRegistry
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec
from repro.workload.traces import Trace, UpdateRecord

POLICIES = ("FIFO", "UH", "QH", "QUTS")


def update_only_trace(seed: int, n_updates: int = 60,
                      n_items: int = 5) -> Trace:
    """A deterministic update-only workload over a handful of items."""
    import random
    rng = random.Random(seed)
    updates = []
    t = 0.0
    for k in range(n_updates):
        t += rng.uniform(0.5, 10.0)
        updates.append(UpdateRecord(t, f"S{rng.randrange(n_items)}",
                                    rng.uniform(1.0, 5.0),
                                    value=float(k + 1)))
    return Trace([], updates, duration_ms=t + 1.0, name=f"updates-{seed}")


class TestUpdateOnlyEquivalence:
    """With no queries, every policy must leave the database in the same
    final state: each item's replica equals the last value pushed for it
    (updates are FIFO within their class in all four policies)."""

    @given(st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=10, deadline=None)
    def test_final_values_policy_independent(self, seed):
        trace = update_only_trace(seed)
        final_values = {}
        # run_simulation discards the database, so replay directly:
        for policy in POLICIES:
            env = Environment()
            database = Database()
            server = DatabaseServer(env, database, make_scheduler(policy),
                                    ProfitLedger(), StreamRegistry(seed),
                                    config=ServerConfig())

            def source(env, server=server):
                for record in trace.updates:
                    delay = record.arrival_ms - env.now
                    if delay > 0:
                        yield env.timeout(delay)
                    server.submit_update(Update(env.now, record.exec_ms,
                                                record.item,
                                                value=record.value))

            env.process(source(env))
            env.run(until=trace.duration_ms + 60_000.0)
            final_values[policy] = {
                item.key: item.value for item in database.items()}

        expected = {}
        for record in trace.updates:
            expected[record.item] = record.value
        for policy, values in final_values.items():
            assert values == expected, policy


class TestStalenessMonotonicity:
    """Giving updates strictly more priority can only reduce the mean
    staleness observed by queries: uu(UH) <= uu(QUTS) and uu(UH) <=
    uu(QH) on the same trace."""

    @pytest.mark.parametrize("seed", [3, 17])
    def test_uh_minimises_staleness(self, seed):
        trace = StockWorkloadGenerator(WorkloadSpec().scaled(15_000.0),
                                       master_seed=seed).generate()
        results = {p: run_simulation(make_scheduler(p), trace,
                                     QCFactory.balanced(), master_seed=1)
                   for p in POLICIES}
        for policy in ("FIFO", "QH", "QUTS"):
            assert results["UH"].mean_staleness \
                <= results[policy].mean_staleness + 1e-9, policy


class TestLoadMonotonicity:
    """Scaling all arrival rates down must not worsen the profit
    percentage (a sanity property of the whole stack)."""

    def test_lighter_load_not_worse(self):
        base = WorkloadSpec().scaled(15_000.0)
        light = dataclasses.replace(
            base,
            query_rate_per_s=base.query_rate_per_s / 4,
            update_rate_per_s=base.update_rate_per_s / 4,
            crowds_per_5min=0.0)
        heavy_trace = StockWorkloadGenerator(base, master_seed=5).generate()
        light_trace = StockWorkloadGenerator(light, master_seed=5).generate()
        for policy in ("FIFO", "QUTS"):
            heavy = run_simulation(make_scheduler(policy), heavy_trace,
                                   QCFactory.balanced(), master_seed=1)
            lighter = run_simulation(make_scheduler(policy), light_trace,
                                     QCFactory.balanced(), master_seed=1)
            assert lighter.total_percent >= heavy.total_percent - 0.02, \
                policy


class TestKernelSoak:
    """Randomised process graphs: spawn/wait/interrupt chains must neither
    deadlock nor lose events."""

    @given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=20.0),
                              st.booleans()),
                    min_size=1, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_random_spawn_trees(self, plan):
        env = Environment()
        finished = []

        def worker(env, delay, spawn_child, depth=0):
            if spawn_child and depth < 3:
                child = env.process(worker(env, delay / 2, False,
                                           depth + 1))
                yield child
            yield env.timeout(delay)
            finished.append(env.now)

        for delay, spawn_child in plan:
            env.process(worker(env, delay, spawn_child))
        env.run()
        expected = sum(2 if spawn and True else 1
                       for __, spawn in plan)
        assert len(finished) == expected

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_interrupt_storms(self, n_victims):
        env = Environment()
        survived = []

        def victim(env):
            for __ in range(3):
                try:
                    yield env.timeout(100.0)
                except Interrupt:
                    pass
            survived.append(True)

        def attacker(env, targets):
            while any(t.is_alive for t in targets):
                yield env.timeout(7.0)
                for target in targets:
                    if target.is_alive:
                        target.interrupt("storm")

        targets = [env.process(victim(env)) for __ in range(n_victims)]
        env.process(attacker(env, targets))
        env.run(until=10_000.0)
        # Every victim eventually absorbs 3 interrupts/timeouts and exits.
        assert len(survived) == n_victims
