"""Integration tests for the preemptive database server.

These exercise the server directly with hand-placed arrivals (no trace
generator), so every timing assertion is exact.
"""

import pytest

from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, TxnStatus, Update
from repro.metrics.profit import ProfitLedger
from repro.qc.contracts import QualityContract
from repro.scheduling import FIFOScheduler, make_qh, make_uh
from repro.scheduling.quts import QUTSScheduler
from repro.sim import Environment
from repro.sim.rng import StreamRegistry


def build_server(scheduler, overhead=0.0):
    env = Environment()
    ledger = ProfitLedger()
    server = DatabaseServer(env, Database(), scheduler, ledger,
                            StreamRegistry(0),
                            config=ServerConfig(
                                class_switch_overhead=overhead))
    return env, server, ledger


def step_qc(qosmax=10.0, rtmax=50.0, qodmax=10.0, uumax=1.0, lifetime=1e6):
    return QualityContract.step(qosmax, rtmax, qodmax, uumax,
                                lifetime=lifetime)


def at(env, time, fn, *args):
    """Schedule ``fn(*args)`` at absolute simulated ``time``."""
    def proc(env):
        if time > env.now:
            yield env.timeout(time - env.now)
        fn(*args)
        return None
        yield  # pragma: no cover

    env.process(proc(env))


class TestBasicExecution:
    def test_single_query_commits(self):
        env, server, ledger = build_server(FIFOScheduler())
        query = Query(0.0, 7.0, ("A",), step_qc())
        at(env, 0.0, server.submit_query, query)
        env.run(until=100.0)
        assert query.status is TxnStatus.COMMITTED
        assert query.finish_time == pytest.approx(7.0)
        assert query.qos_profit == 10.0   # rt 7 <= 50
        assert query.qod_profit == 10.0   # staleness 0 < 1
        assert ledger.counters.value("queries_committed") == 1

    def test_single_update_applies(self):
        env, server, ledger = build_server(FIFOScheduler())
        update = Update(0.0, 2.0, "A", value=5.0)
        at(env, 0.0, server.submit_update, update)
        env.run(until=100.0)
        assert update.status is TxnStatus.COMMITTED
        assert server.database.read("A") == 5.0
        assert ledger.counters.value("updates_applied") == 1

    def test_fifo_runs_in_arrival_order(self):
        env, server, __ = build_server(FIFOScheduler())
        first = Update(0.0, 2.0, "A")
        second = Update(1.0, 2.0, "B")
        at(env, 0.0, server.submit_update, first)
        at(env, 1.0, server.submit_update, second)
        env.run(until=100.0)
        assert first.finish_time < second.finish_time

    def test_query_sees_staleness_of_pending_update(self):
        env, server, __ = build_server(make_uh())
        # Update and query arrive together; UH applies the update first,
        # so the query reads fresh data.
        update = Update(0.0, 2.0, "A", value=5.0)
        query = Query(0.0, 7.0, ("A",), step_qc())
        at(env, 0.0, server.submit_update, update)
        at(env, 0.0, server.submit_query, query)
        env.run(until=100.0)
        assert query.staleness == 0.0
        assert query.qod_profit == 10.0

    def test_qh_query_reads_stale(self):
        env, server, __ = build_server(make_qh())
        update = Update(0.0, 2.0, "A", value=5.0)
        query = Query(0.0, 7.0, ("A",), step_qc())
        at(env, 0.0, server.submit_update, update)
        at(env, 0.0, server.submit_query, query)
        env.run(until=100.0)
        # QH runs the query first: one unapplied update => no QoD profit
        # (uumax = 1 is exclusive).
        assert query.staleness == 1.0
        assert query.qod_profit == 0.0
        assert query.qos_profit == 10.0


class TestPreemption:
    def test_uh_update_preempts_running_query(self):
        env, server, __ = build_server(make_uh())
        query = Query(0.0, 7.0, ("A",), step_qc())
        update = Update(3.0, 2.0, "B")
        at(env, 0.0, server.submit_query, query)
        at(env, 3.0, server.submit_update, update)
        env.run(until=100.0)
        # Update runs 3..5, query resumes and finishes at 9.
        assert update.finish_time == pytest.approx(5.0)
        assert query.finish_time == pytest.approx(9.0)
        assert query.preemptions == 1
        assert query.restarts == 0  # no lock conflict (different items)

    def test_uh_conflicting_update_restarts_query(self):
        env, server, ledger = build_server(make_uh())
        query = Query(0.0, 7.0, ("A",), step_qc())
        update = Update(3.0, 2.0, "A")  # same item -> RW conflict
        at(env, 0.0, server.submit_query, query)
        at(env, 3.0, server.submit_update, update)
        env.run(until=100.0)
        assert update.finish_time == pytest.approx(5.0)
        # Query lost its 3 ms of progress and redid the full 7 ms.
        assert query.restarts == 1
        assert query.finish_time == pytest.approx(12.0)
        assert ledger.counters.value("restarts_queries") == 1

    def test_qh_query_preempts_and_restarts_running_update(self):
        env, server, ledger = build_server(make_qh())
        update = Update(0.0, 4.0, "A")
        query = Query(1.0, 7.0, ("B",), step_qc())
        at(env, 0.0, server.submit_update, update)
        at(env, 1.0, server.submit_query, query)
        env.run(until=100.0)
        assert query.finish_time == pytest.approx(8.0)
        # Cross-class preemption aborts the blind write: its 1 ms of
        # progress is lost and the full 4 ms are redone after the query.
        assert update.finish_time == pytest.approx(12.0)
        assert update.preemptions == 1
        assert update.restarts == 1
        assert ledger.counters.value("restarts_updates") == 1

    def test_qh_preemption_can_suspend_updates_when_configured(self):
        env = Environment()
        ledger = ProfitLedger()
        server = DatabaseServer(
            env, Database(), make_qh(), ledger, StreamRegistry(0),
            config=ServerConfig(class_switch_overhead=0.0,
                                update_preemption="suspend"))
        update = Update(0.0, 4.0, "A")
        query = Query(1.0, 7.0, ("B",), step_qc())
        at(env, 0.0, server.submit_update, update)
        at(env, 1.0, server.submit_query, query)
        env.run(until=100.0)
        # Suspend semantics: the update keeps its 1 ms of progress.
        assert update.finish_time == pytest.approx(11.0)
        assert update.restarts == 0

    def test_invalid_update_preemption_config(self):
        with pytest.raises(ValueError):
            ServerConfig(update_preemption="drop")

    def test_fifo_never_preempts(self):
        env, server, __ = build_server(FIFOScheduler())
        update = Update(0.0, 4.0, "A")
        query = Query(1.0, 7.0, ("A",), step_qc())
        at(env, 0.0, server.submit_update, update)
        at(env, 1.0, server.submit_query, query)
        env.run(until=100.0)
        assert update.finish_time == pytest.approx(4.0)
        assert update.preemptions == 0
        assert query.finish_time == pytest.approx(11.0)


class TestInvalidation:
    def test_newer_update_supersedes_queued(self):
        env, server, ledger = build_server(make_qh())
        # A long query keeps the CPU busy; two updates on the same item
        # queue up behind it.
        query = Query(0.0, 7.0, ("B",), step_qc())
        old = Update(1.0, 2.0, "A", value=1.0)
        new = Update(2.0, 2.0, "A", value=2.0)
        at(env, 0.0, server.submit_query, query)
        at(env, 1.0, server.submit_update, old)
        at(env, 2.0, server.submit_update, new)
        env.run(until=100.0)
        assert old.status is TxnStatus.DROPPED_SUPERSEDED
        assert new.status is TxnStatus.COMMITTED
        assert server.database.read("A") == 2.0
        assert ledger.counters.value("updates_superseded") == 1
        assert ledger.counters.value("updates_applied") == 1

    def test_running_update_aborted_when_superseded(self):
        env, server, ledger = build_server(FIFOScheduler())
        old = Update(0.0, 4.0, "A", value=1.0)
        new = Update(1.0, 2.0, "A", value=2.0)  # arrives mid-execution
        at(env, 0.0, server.submit_update, old)
        at(env, 1.0, server.submit_update, new)
        env.run(until=100.0)
        assert old.status is TxnStatus.DROPPED_SUPERSEDED
        assert new.status is TxnStatus.COMMITTED
        # The CPU was freed at t=1: new runs 1..3.
        assert new.finish_time == pytest.approx(3.0)
        assert server.database.read("A") == 2.0
        assert server.database.item("A").unapplied_updates == 0


class TestLifetime:
    def test_late_query_dropped(self):
        env, server, ledger = build_server(make_uh())
        # Keep the CPU busy with updates past the query's lifetime.
        query = Query(0.0, 7.0, ("A",),
                      step_qc(lifetime=10.0))
        at(env, 0.0, server.submit_query, query)
        for k in range(10):
            at(env, float(k), server.submit_update,
               Update(float(k), 2.0, f"U{k}"))
        env.run(until=100.0)
        assert query.status is TxnStatus.DROPPED_LIFETIME
        assert query.total_profit == 0.0
        assert ledger.counters.value("queries_dropped_lifetime") == 1

    def test_query_within_lifetime_commits(self):
        env, server, __ = build_server(make_uh())
        query = Query(0.0, 7.0, ("A",), step_qc(lifetime=1000.0))
        at(env, 0.0, server.submit_query, query)
        at(env, 0.0, server.submit_update, Update(0.0, 2.0, "B"))
        env.run(until=2000.0)
        assert query.status is TxnStatus.COMMITTED


class TestSwitchOverhead:
    def test_overhead_delays_class_switch(self):
        env, server, __ = build_server(FIFOScheduler(), overhead=0.5)
        update = Update(0.0, 2.0, "A")
        query = Query(0.0, 7.0, ("B",), step_qc())
        at(env, 0.0, server.submit_update, update)
        at(env, 0.0, server.submit_query, query)
        env.run(until=100.0)
        # update: 0..2, switch 0.5, query: 2.5..9.5
        assert update.finish_time == pytest.approx(2.0)
        assert query.finish_time == pytest.approx(9.5)

    def test_no_overhead_within_class(self):
        env, server, __ = build_server(FIFOScheduler(), overhead=0.5)
        u1 = Update(0.0, 2.0, "A")
        u2 = Update(0.0, 2.0, "B")
        at(env, 0.0, server.submit_update, u1)
        at(env, 0.0, server.submit_update, u2)
        env.run(until=100.0)
        assert u2.finish_time == pytest.approx(4.0)


class TestFinalize:
    def test_unfinished_work_accounted(self):
        env, server, ledger = build_server(FIFOScheduler())
        at(env, 0.0, server.submit_query,
           Query(0.0, 7.0, ("A",), step_qc()))
        at(env, 0.0, server.submit_query,
           Query(0.0, 7.0, ("B",), step_qc()))
        at(env, 0.0, server.submit_update, Update(0.0, 2.0, "C"))
        env.run(until=8.0)  # only the first query finishes
        server.finalize()
        counters = ledger.counters
        assert counters.value("queries_committed") == 1
        assert counters.value("queries_unfinished") == 1
        assert counters.value("updates_unfinished") == 1


class TestQUTSServerIntegration:
    def test_quts_alternates_under_pressure(self):
        """With fixed rho = 0.5 and both queues saturated, both classes
        make progress within a few atom times."""
        scheduler = QUTSScheduler(tau=5.0, fixed_rho=0.5)
        env, server, ledger = build_server(scheduler)
        for k in range(8):
            at(env, 0.0, server.submit_query,
               Query(0.0, 5.0, (f"Q{k}",), step_qc()))
            at(env, 0.0, server.submit_update,
               Update(0.0, 5.0, f"U{k}"))
        env.run(until=45.0)
        committed_q = ledger.counters.value("queries_committed")
        applied_u = ledger.counters.value("updates_applied")
        assert committed_q >= 2
        assert applied_u >= 2

    def test_quts_rho_one_still_serves_updates_when_idle(self):
        """The paper: 'With rho = 1, updates are still executing, but only
        when no queries are waiting.'"""
        scheduler = QUTSScheduler(tau=5.0, fixed_rho=1.0)
        env, server, ledger = build_server(scheduler)
        at(env, 0.0, server.submit_query,
           Query(0.0, 5.0, ("A",), step_qc()))
        at(env, 0.0, server.submit_update, Update(0.0, 2.0, "B"))
        env.run(until=50.0)
        assert ledger.counters.value("queries_committed") == 1
        assert ledger.counters.value("updates_applied") == 1
