"""Unit + property tests for QC profit functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qc.functions import (LinearProfit, PiecewiseLinearProfit,
                                StepProfit, ZeroProfit)

metric_values = st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestStepProfit:
    def test_inclusive_pays_at_threshold(self):
        f = StepProfit(10.0, 50.0, inclusive=True)
        assert f.profit(0.0) == 10.0
        assert f.profit(50.0) == 10.0
        assert f.profit(50.0001) == 0.0

    def test_exclusive_does_not_pay_at_threshold(self):
        f = StepProfit(10.0, 1.0, inclusive=False)
        assert f.profit(0.0) == 10.0
        assert f.profit(0.999) == 10.0
        assert f.profit(1.0) == 0.0

    def test_uumax_one_semantics(self):
        """uumax=1: 'QoD profit is gained only when no update is missed'."""
        f = StepProfit(5.0, 1.0, inclusive=False)
        assert f.profit(0.0) == 5.0  # zero missed updates
        assert f.profit(1.0) == 0.0  # one missed update

    def test_max_profit_and_zero_after(self):
        f = StepProfit(7.0, 30.0)
        assert f.max_profit == 7.0
        assert f.zero_after == 30.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            StepProfit(-1.0, 10.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            StepProfit(1.0, -10.0)

    def test_callable_interface(self):
        f = StepProfit(2.0, 5.0)
        assert f(3.0) == 2.0

    @given(metric_values, metric_values)
    @settings(max_examples=100)
    def test_non_increasing(self, a, b):
        f = StepProfit(10.0, 42.0)
        lo, hi = min(a, b), max(a, b)
        assert f.profit(lo) >= f.profit(hi)


class TestLinearProfit:
    def test_endpoints(self):
        f = LinearProfit(10.0, 100.0)
        assert f.profit(0.0) == 10.0
        assert f.profit(100.0) == 0.0
        assert f.profit(200.0) == 0.0

    def test_midpoint(self):
        f = LinearProfit(10.0, 100.0)
        assert f.profit(50.0) == pytest.approx(5.0)
        assert f.profit(25.0) == pytest.approx(7.5)

    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError):
            LinearProfit(10.0, 0.0)

    def test_negative_metric_clamps_to_max(self):
        assert LinearProfit(10.0, 100.0).profit(-5.0) == 10.0

    @given(metric_values, metric_values)
    @settings(max_examples=100)
    def test_non_increasing(self, a, b):
        f = LinearProfit(33.0, 77.0)
        lo, hi = min(a, b), max(a, b)
        assert f.profit(lo) >= f.profit(hi) - 1e-12

    @given(metric_values)
    @settings(max_examples=100)
    def test_bounded(self, x):
        f = LinearProfit(33.0, 77.0)
        assert 0.0 <= f.profit(x) <= 33.0


class TestPiecewiseLinearProfit:
    def test_interpolation(self):
        f = PiecewiseLinearProfit([(0.0, 10.0), (10.0, 10.0),
                                   (20.0, 0.0)])
        assert f.profit(5.0) == 10.0
        assert f.profit(15.0) == pytest.approx(5.0)
        assert f.profit(25.0) == 0.0

    def test_before_first_point_constant(self):
        f = PiecewiseLinearProfit([(10.0, 8.0), (20.0, 0.0)])
        assert f.profit(0.0) == 8.0

    def test_after_last_point_constant(self):
        f = PiecewiseLinearProfit([(0.0, 8.0), (20.0, 2.0)])
        assert f.profit(100.0) == 2.0

    def test_max_profit_is_first(self):
        f = PiecewiseLinearProfit([(0.0, 8.0), (20.0, 2.0)])
        assert f.max_profit == 8.0

    def test_zero_after_finds_first_zero(self):
        f = PiecewiseLinearProfit([(0.0, 8.0), (20.0, 0.0), (30.0, 0.0)])
        assert f.zero_after == 20.0

    def test_zero_after_inf_when_never_zero(self):
        f = PiecewiseLinearProfit([(0.0, 8.0), (20.0, 2.0)])
        assert f.zero_after == float("inf")

    def test_increasing_profit_rejected(self):
        with pytest.raises(ValueError, match="non-increasing"):
            PiecewiseLinearProfit([(0.0, 1.0), (10.0, 5.0)])

    def test_non_monotone_metric_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseLinearProfit([(10.0, 5.0), (10.0, 1.0)])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearProfit([(0.0, 5.0)])

    def test_negative_profit_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearProfit([(0.0, 5.0), (10.0, -1.0)])

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False)),
        min_size=2, max_size=8),
        metric_values, metric_values)
    @settings(max_examples=100)
    def test_valid_polylines_are_non_increasing(self, raw_points, a, b):
        # Normalise the raw points into a valid polyline.
        xs = sorted({round(x, 6) for x, __ in raw_points})
        if len(xs) < 2:
            return
        ys = sorted((y for __, y in raw_points), reverse=True)
        points = list(zip(xs, ys[:len(xs)]))
        if len(points) < 2:
            return
        f = PiecewiseLinearProfit(points)
        lo, hi = min(a, b), max(a, b)
        assert f.profit(lo) >= f.profit(hi) - 1e-9


class TestZeroProfit:
    def test_always_zero(self):
        f = ZeroProfit()
        assert f.profit(0.0) == 0.0
        assert f.profit(1e9) == 0.0
        assert f.max_profit == 0.0
        assert f.zero_after == 0.0
