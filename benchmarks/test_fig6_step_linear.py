"""Figure 6 — step vs linear QCs for FIFO / UH / QH / QUTS (balanced).

Paper: QUTS gains the highest total profit, taking "the best profit
dimension of the other policies: high QoS from QH and high QoD from UH".
QH's QoS is near-maximal, UH's QoD is near-maximal, FIFO has the worst
QoS.  Linear QCs show the same ordering at a slightly lower level.

Shape checks implement those statements with small noise tolerances.
(Known deviation, documented in EXPERIMENTS.md: with exactly balanced
preferences Eq. 4 drives rho to 1, so QUTS and QH coincide within noise
instead of QUTS strictly dominating.)
"""

from conftest import run_once, save_report

from repro.experiments.figures import fig6
from repro.experiments.report import format_table

#: With exactly balanced preferences Eq. 4 drives rho to 1 and QUTS
#: degenerates to QH-with-atom-time-granularity; the tau-grained switching
#: costs it up to ~3% total profit against QH's instant preemption (more
#: under linear QCs, where every extra millisecond of latency is priced).
#: EXPERIMENTS.md discusses this as the one known deviation from Figure 6.
TOLERANCE = 0.035


def test_fig6_step_vs_linear(benchmark, config, trace, results_dir):
    data = run_once(benchmark, fig6, config, trace)

    for shape in ("step", "linear"):
        rows = {row["policy"]: row for row in data[shape]}
        quts, qh, uh, fifo = (rows["QUTS"], rows["QH"], rows["UH"],
                              rows["FIFO"])

        # QUTS takes the best of both dimensions.
        assert quts["QOS%"] >= uh["QOS%"] - TOLERANCE, shape
        assert quts["QOS%"] >= fifo["QOS%"] - TOLERANCE, shape
        assert quts["QOD%"] >= qh["QOD%"] - TOLERANCE, shape
        # ... and the best total within tolerance.
        best = max(r["total%"] for r in rows.values())
        assert quts["total%"] >= best - TOLERANCE, shape

        # The fixed policies show their fixed-priority signatures.
        assert qh["QOS%"] > uh["QOS%"], shape
        assert uh["QOD%"] >= qh["QOD%"] - TOLERANCE, shape
        # FIFO ignores deadlines: worst-or-near-worst QoS.
        assert fifo["QOS%"] <= min(qh["QOS%"], quts["QOS%"]), shape

    # Linear QCs pay strictly less than step QCs at the same latencies
    # (profit decays from time zero), so QUTS's step total exceeds linear.
    step_quts = next(r for r in data["step"] if r["policy"] == "QUTS")
    linear_quts = next(r for r in data["linear"] if r["policy"] == "QUTS")
    assert step_quts["total%"] >= linear_quts["total%"]

    for shape in ("step", "linear"):
        save_report(results_dir, f"fig6_{shape}",
                    format_table(data[shape],
                                 title=f"Figure 6 (reproduced) - {shape} "
                                       f"QCs"))
