"""Table 3 — workload information and system parameters.

Paper (30 min): 82,129 queries / 496,892 updates / 4,608 stocks; query
execution 5-9 ms; update execution 1-5 ms; tau = 10 ms; omega = 1000 ms.

Shape checks: totals scale linearly with the configured duration; service
times stay inside the published ranges; the stock universe is the paper's.
"""

from conftest import run_once, save_report

from repro.experiments.report import format_table
from repro.experiments.tables import table3
from repro.workload.synthetic import (PAPER_DURATION_MS, PAPER_N_QUERIES,
                                      PAPER_N_STOCKS, PAPER_N_UPDATES)


def test_table3_workload(benchmark, config, trace, results_dir):
    rows = run_once(benchmark, table3, config)
    values = dict(rows)

    scale = config.duration_ms / PAPER_DURATION_MS
    n_queries = int(values["# queries"])
    n_updates = int(values["# updates"])
    assert abs(n_queries - PAPER_N_QUERIES * scale) \
        <= 0.15 * PAPER_N_QUERIES * scale
    assert abs(n_updates - PAPER_N_UPDATES * scale) \
        <= 0.15 * PAPER_N_UPDATES * scale
    assert int(values["# stocks"]) <= PAPER_N_STOCKS

    assert values["query execution time"] == "5 ~ 9ms"
    assert values["update execution time"].startswith("1 ~ ")
    assert values["default atom time (tau)"] == "10ms"
    assert values["default adaptation period (omega)"] == "1000ms"

    save_report(results_dir, "table3_workload",
                format_table([{"parameter": k, "value": v}
                              for k, v in rows],
                             title="Table 3 (reproduced)"))
