"""Figure 9 — QUTS adaptability to flip-flopping user preferences.

Paper: over four 75 s intervals the qosmax:qodmax ratio flips between 1:5
and 5:1.  The gained profit closely follows the submitted maximum (a-c),
and ρ "tracks" the QoS share, ranging from around 0.6 to around 1 (d),
re-converging within a couple of adaptation periods of each flip.

Shape checks: per-phase mean ρ near 0.6 in QoD-heavy phases and near 1 in
QoS-heavy phases; total gained profit a large fraction of the maximum.
"""

import statistics

from conftest import run_once, save_report

from repro.experiments.figures import fig9
from repro.experiments.report import format_series, format_table


def test_fig9_adaptability(benchmark, config, trace, results_dir):
    data = run_once(benchmark, fig9, config, trace)
    result = data["result"]

    # (a-c): the gained profit tracks the ideal maximum closely.
    assert result.total_percent > 0.75

    # (d): rho per phase. Eq. 4 predicts 0.6 for 1:5 and 1.0 for 5:1.
    for phase in data["phase_rho"]:
        if phase["ratio_qos_to_qod"] < 1.0:
            assert 0.52 <= phase["mean_rho"] <= 0.72, phase
        else:
            assert phase["mean_rho"] >= 0.90, phase

    # rho re-converges after each flip: the last rho samples inside each
    # phase sit close to the phase's Eq. 4 target.
    rho = data["rho_series"]
    from repro.experiments.figures import FIG9_PHASE_MS
    for phase in data["phase_rho"]:
        start = phase["phase"] * FIG9_PHASE_MS
        end = start + FIG9_PHASE_MS
        tail = [v for t, v in rho.items()
                if start + 0.6 * FIG9_PHASE_MS <= t < end]
        if not tail:
            continue
        target = 0.6 if phase["ratio_qos_to_qod"] < 1.0 else 1.0
        assert abs(statistics.fmean(tail) - target) < 0.08, phase

    save_report(results_dir, "fig9_phase_rho",
                format_table(data["phase_rho"],
                             title="Figure 9d (reproduced) - mean rho per "
                                   "phase (targets: 0.6 / 1.0)"))
    series = data["gained_total"]
    save_report(results_dir, "fig9_profit",
                format_series(series.times, series.values,
                              title="Figure 9a (reproduced) - gained "
                                    "profit per second, 5 s window"))
