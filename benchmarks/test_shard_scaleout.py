"""Extension — sharded scale-out: profit vs shard count, hot-key skew.

The replicated-portal bench (``test_cluster_scaleout.py``) scales
*availability*: every replica still absorbs the full update stream.
This bench scales *throughput*: the consistent-hash ring partitions the
stocks across shard portals, so each shard pays only its slice of the
update load while the shard planner keeps multi-stock queries correct
via scatter-gather (``repro.shard``).  Two tiers:

* **scale-out** — one fixed trace (fixed aggregate load, which
  saturates a single server) replayed at 1/2/4/8 shards.  Total profit
  must be non-decreasing from 1 to 4 shards — if dividing the work
  doesn't pay, the subsystem is overhead;
* **hot-key skew** — a Zipf tier (sharper popularity skew, high
  query/update correlation) replayed with a static ring vs. the
  rebalancing controller, identical seeds otherwise.  Rebalancing must
  not lose, must actually move keys, and runs under an armed
  :class:`~repro.sim.invariants.InvariantMonitor` whose
  ``shard_cutover`` law asserts update conservation across every
  migration (buffered == replayed).

Results merge into ``benchmarks/results/shard_scaleout.json`` (with
host metadata) for CI artifact upload.
"""

import json

from conftest import host_metadata, run_once, save_report

from repro.experiments.scaleout import (SKEW_REBALANCE, hot_key_spec,
                                        run_sharded_simulation)
from repro.experiments.report import format_table
from repro.qc.generator import QCFactory
from repro.scheduling.quts import QUTSScheduler
from repro.workload.synthetic import StockWorkloadGenerator

SHARD_COUNTS = (1, 2, 4, 8)
SKEW_SHARDS = 4


def _merge(results_dir, section, payload) -> None:
    path = results_dir / "shard_scaleout.json"
    report = json.loads(path.read_text()) if path.exists() else {}
    report["host"] = host_metadata()
    report[section] = payload
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[{section} saved to {path}]")


def _row(label, result):
    return {"deployment": label,
            "total%": result.total_percent,
            "QOS%": result.qos_percent,
            "QOD%": result.qod_percent,
            "rt_ms": result.mean_response_time,
            "fanouts": result.fanouts_resolved,
            "rebalances": result.rebalances,
            "keys_moved": result.keys_migrated}


def _scaleout_sweep(config, trace):
    factory = QCFactory.balanced()
    rows, results = [], {}
    for n_shards in SHARD_COUNTS:
        result = run_sharded_simulation(
            n_shards, QUTSScheduler, trace, factory,
            master_seed=config.run_seed, invariants=True)
        results[n_shards] = result
        rows.append(_row(f"{n_shards} shard(s)", result))
    return rows, results


def test_shard_scaleout(benchmark, config, trace, results_dir):
    rows, results = run_once(benchmark, _scaleout_sweep, config, trace)

    # Dividing a saturating load across shards must pay: total profit is
    # non-decreasing from 1 to 4 shards (small tolerance for routing
    # noise), and every cell passed the conservation monitor.
    assert results[2].total_percent >= results[1].total_percent - 0.01
    assert results[4].total_percent >= results[2].total_percent - 0.01
    assert results[4].total_percent >= results[1].total_percent
    for result in results.values():
        assert result.invariants_checked

    # Multi-stock queries actually crossed shards (scatter-gather ran).
    assert results[4].fanouts_resolved > 0

    save_report(results_dir, "shard_scaleout",
                format_table(rows, title="Extension - sharded scale-out "
                                         "(QUTS shards, balanced QCs, "
                                         "fixed aggregate load)"))
    _merge(results_dir, "scaleout",
           {"scale": config.scale, "rows": rows})


def _skew_sweep(config):
    skewed_trace = StockWorkloadGenerator(
        hot_key_spec(config.spec()),
        master_seed=config.workload_seed).generate()
    factory = QCFactory.balanced()
    rows, results = [], {}
    for label, rebalance in (("static ring", None),
                             ("rebalancing ring", SKEW_REBALANCE)):
        result = run_sharded_simulation(
            SKEW_SHARDS, QUTSScheduler, skewed_trace, factory,
            master_seed=config.run_seed, rebalance=rebalance,
            invariants=True)
        results[label] = result
        rows.append(_row(label, result))
    return rows, results


def test_shard_rebalancing_under_skew(benchmark, config, results_dir):
    rows, results = run_once(benchmark, _skew_sweep, config)
    static = results["static ring"]
    rebalancing = results["rebalancing ring"]

    # The controller detected the skew and moved ring weight...
    assert rebalancing.rebalances >= 1
    assert rebalancing.keys_migrated > 0
    # ...without losing or double-applying a single update: both cells
    # ran under the armed monitor (the rebalancing one exercised the
    # shard_cutover conservation law on every migration).
    assert static.invariants_checked and rebalancing.invariants_checked
    # ...and it must pay: rebalancing does not lose to the static ring
    # on the tier it exists for.
    assert rebalancing.total_percent >= static.total_percent

    save_report(results_dir, "shard_skew",
                format_table(rows, title="Extension - hot-key skew "
                                         "(Zipf tier, 4 shards, static "
                                         "vs rebalancing ring)"))
    _merge(results_dir, "skew",
           {"scale": config.scale, "rows": rows})
