"""Ablation — adaptive ρ vs fixed ρ (is Eq. 4-6 adaptation worth it?).

Under the Figure 9 flip-flop preferences no single fixed ρ can be right in
both phases: ρ = 1 wastes the QoD-heavy phases, ρ = 0.6 wastes the
QoS-heavy ones.  The adaptive scheduler must beat (or match) every fixed
setting; the fixed sweep also validates that the Eq. 4 optima (0.6 / 1.0)
bracket the best static choices.
"""

from conftest import run_once, save_report

from repro.experiments.ablations import ablation_rho
from repro.experiments.figures import FIG9_PHASE_MS
from repro.experiments.report import format_table


def test_ablation_adaptive_vs_fixed_rho(benchmark, config, trace,
                                        results_dir):
    rows = run_once(benchmark, ablation_rho, config, trace)
    adaptive = rows[-1]["total%"]
    fixed = [row["total%"] for row in rows[:-1]]

    # Adaptation at least matches the best clairvoyant-static setting.
    assert adaptive >= max(fixed) - 0.01
    # ... and, when the horizon spans at least one preference flip (the
    # smoke scale does not), clearly beats a wrongly fixed preference.
    n_phases = round(trace.duration_ms / FIG9_PHASE_MS)
    if n_phases >= 2:
        assert adaptive > min(fixed) + 0.02
    else:
        assert adaptive >= min(fixed) - 0.005

    save_report(results_dir, "ablation_rho",
                format_table(rows, title="Ablation - fixed vs adaptive "
                                          "rho (Figure 9 workload)"))
