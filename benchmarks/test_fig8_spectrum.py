"""Figure 8 — UH / QH / QUTS across the Table 4 QC spectrum.

Paper: UH gains almost the maximal QoD but performs poorly on QoS; QH
gains almost the maximal QoS but "relative poorly" on QoD; QUTS gains
close to the maximum on both at every mix, "consistently performing better
or as good as the best of the two policies", with headline improvements of
up to 101.3% over UH and up to 40.1% over QH.

Shape checks: the three signatures, QUTS >= max(UH, QH) - tolerance at
every mix, and a materially positive best-case improvement over each.
"""

from conftest import run_once, save_report

from repro.experiments.figures import fig8
from repro.experiments.report import format_table

TOLERANCE = 0.02


def test_fig8_spectrum(benchmark, config, trace, results_dir):
    data = run_once(benchmark, fig8, config, trace)
    uh_rows, qh_rows, quts_rows = data["UH"], data["QH"], data["QUTS"]

    for uh, qh, quts in zip(uh_rows, qh_rows, quts_rows):
        qos_max = quts["QOSmax%"]
        qod_max = 1.0 - qos_max

        # UH: near-maximal QoD, poor QoS.
        assert uh["QOD%"] >= 0.75 * qod_max, uh
        assert uh["QOS%"] < qh["QOS%"], uh

        # QH: near-maximal QoS.
        assert qh["QOS%"] >= 0.85 * qos_max, qh

        # QUTS: at least as good as the best fixed policy.
        assert quts["total%"] >= max(uh["total%"], qh["total%"]) \
            - TOLERANCE, quts

    # QUTS's QoD advantage over QH appears on the QoD-heavy side, where
    # Eq. 4 keeps rho < 1 and updates get protected atom-time slots.
    qod_heavy = -1  # QODmax% = 0.9
    assert quts_rows[qod_heavy]["QOD%"] > qh_rows[qod_heavy]["QOD%"]

    # Headline improvements: materially positive somewhere on the sweep.
    improvements = data["improvements"]
    best_vs_uh = max(row["QUTS_vs_UH_%"] for row in improvements)
    best_vs_qh = max(row["QUTS_vs_QH_%"] for row in improvements)
    assert best_vs_uh > 10.0
    assert best_vs_qh > 0.0

    for name, rows in (("uh", uh_rows), ("qh", qh_rows),
                       ("quts", quts_rows)):
        save_report(results_dir, f"fig8_{name}",
                    format_table(rows,
                                 title=f"Figure 8 (reproduced) - "
                                       f"{name.upper()}"))
    save_report(results_dir, "fig8_improvements",
                format_table(improvements,
                             title="QUTS improvement over UH / QH "
                                   "(paper: up to 101.3% / 40.1%)"))
