"""Extension — **replicated** portal scale-out and QC-aware routing.

The paper's related work ([17]) applies Quality Contracts to replica
selection.  This bench runs the workload against 1 and 2 QUTS replicas
(updates **broadcast to every replica**, queries routed) and compares
routers:

* replication must help: two replicas halve the query load per server
  while each still pays the full update stream, so latency and total
  profit cannot get worse;
* the QC-aware router (freshness-critical queries to the freshest
  replica) must not lose to round-robin.

Replication scales query capacity and availability only — every
replica still absorbs all 4,608 stock update streams.  For *update*
scale-out (the keyspace partitioned so each portal pays only its slice
of the update load), see ``test_shard_scaleout.py`` and
``repro.shard``.
"""

from conftest import run_once, save_report

from repro.cluster import (QCAwareRouter, RoundRobinRouter,
                           run_cluster_simulation)
from repro.experiments.report import format_table
from repro.qc.generator import QCFactory
from repro.scheduling.quts import QUTSScheduler


def _sweep(config, trace):
    factory = QCFactory.balanced()
    rows = []
    results = {}
    for n_replicas, router, label in (
            (1, RoundRobinRouter(), "1 replica (replicated portal)"),
            (2, RoundRobinRouter(), "2 replicas, round-robin"),
            (2, QCAwareRouter(), "2 replicas, qc-aware")):
        result = run_cluster_simulation(
            n_replicas, QUTSScheduler, trace, factory, router=router,
            master_seed=config.run_seed)
        results[label] = result
        rows.append({"deployment": label,
                     "QOS%": result.qos_percent,
                     "QOD%": result.qod_percent,
                     "total%": result.total_percent,
                     "rt_ms": result.mean_response_time})
    return rows, results


def test_cluster_scaleout(benchmark, config, trace, results_dir):
    rows, results = run_once(benchmark, _sweep, config, trace)
    single = results["1 replica (replicated portal)"]
    double_rr = results["2 replicas, round-robin"]
    double_qc = results["2 replicas, qc-aware"]

    # Replication helps (or at least never hurts).
    assert double_rr.mean_response_time <= single.mean_response_time
    assert double_rr.total_percent >= single.total_percent - 0.01

    # Contract-aware routing does not lose to blind balancing.
    assert double_qc.total_percent >= double_rr.total_percent - 0.02

    save_report(results_dir, "cluster_scaleout",
                format_table(rows, title="Extension - replicated portal "
                                          "(QUTS replicas, update "
                                          "broadcast, balanced QCs; "
                                          "for partitioned update load "
                                          "see shard_scaleout)"))
