"""Figure 1 — the response-time/staleness trade-off of the naive policies.

Paper (full trace): FIFO [322 ms, 0.07 uu], FIFO-UH [11,591 ms, 0 uu],
FIFO-QH [23 ms, 0.26 uu].  All three points are mutually non-dominating.

Shape checks: FIFO-UH has exactly zero staleness and the worst response
time (orders of magnitude above FIFO-QH); FIFO-QH has the best response
time and non-zero staleness; FIFO sits between them on response time.
"""

from conftest import run_once, save_report

from repro.experiments.figures import fig1
from repro.experiments.report import format_table


def test_fig1_tradeoff(benchmark, config, trace, results_dir):
    rows = run_once(benchmark, fig1, config, trace)
    by_policy = {row["policy"]: row for row in rows}

    fifo = by_policy["FIFO"]
    uh = by_policy["FIFO-UH"]
    qh = by_policy["FIFO-QH"]

    # FIFO-UH: zero staleness, worst (and much worse) response time.
    assert uh["staleness_uu"] == 0.0
    assert uh["response_time_ms"] > 10 * fifo["response_time_ms"]
    assert uh["response_time_ms"] > 100 * qh["response_time_ms"]

    # FIFO-QH: best response time, non-zero staleness.
    assert qh["response_time_ms"] < fifo["response_time_ms"]
    assert qh["staleness_uu"] > 0.0

    # FIFO in between on response time; each point is non-dominated.
    assert (qh["response_time_ms"] < fifo["response_time_ms"]
            < uh["response_time_ms"])
    assert fifo["staleness_uu"] > uh["staleness_uu"]

    save_report(results_dir, "fig1_tradeoff",
                format_table(rows, title="Figure 1 (reproduced) - "
                                          "response time vs staleness"))
