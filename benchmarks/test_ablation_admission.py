"""Ablation — profit-aware admission control (extension; cf. UNIT [14]).

The paper admits every query; its related work (the authors' UNIT system)
admission-controls instead.  This bench quantifies what shedding
hopeless queries does under the policy that needs it most (UH, whose
update-first stance starves queries): rejected contracts are
profit-neutral, so the gained dollars must stay close to the admit-all
run while the served queries' latency improves.
"""

from conftest import run_once, save_report

from repro.db.admission import ProfitAwareAdmission
from repro.experiments.report import format_table
from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import make_uh


def _compare(config, trace):
    factory = QCFactory.balanced()
    rows = []
    results = {}
    for label, admission in (("admit all (paper)", None),
                             ("profit-aware shedding",
                              ProfitAwareAdmission())):
        result = run_simulation(make_uh(), trace, factory,
                                master_seed=config.run_seed,
                                admission=admission)
        results[label] = result
        rows.append({
            "admission": label,
            "gained_$": round(result.ledger.total_gained, 0),
            "rt_ms": result.mean_response_time,
            "rejected": result.counters.get("queries_rejected", 0),
            "dropped_lifetime":
                result.counters.get("queries_dropped_lifetime", 0),
        })
    return rows, results


def test_ablation_admission(benchmark, config, trace, results_dir):
    rows, results = run_once(benchmark, _compare, config, trace)
    plain = results["admit all (paper)"]
    shed = results["profit-aware shedding"]

    # Shedding actually sheds under UH's query starvation...
    assert shed.counters.get("queries_rejected", 0) > 0
    # ... keeps most of the profit dollars (it declines near-worthless
    # contracts)...
    assert shed.ledger.total_gained >= 0.75 * plain.ledger.total_gained
    # ... and the queries it does serve wait no longer on average.
    assert shed.mean_response_time <= plain.mean_response_time * 1.05

    save_report(results_dir, "ablation_admission",
                format_table(rows, title="Ablation - admission control "
                                          "under UH (balanced QCs)"))
