"""Live-serving benchmark: the gateway under real (wall-clock) load.

Unlike every other bench in this harness, these cells run the *live*
asyncio gateway — real time, real backlog — driven by the open-loop
load generator.  Three tiers:

* **correctness** — a light cell whose value is its assertions: every
  offered request resolves to exactly one terminal outcome;
* **micro-scaling** — a policy × load-multiplier grid recording
  p50/p99/p999 response time and realized QoS/QoD per cell;
* **overload (realistic)** — the full robustness stack (deadlines +
  backpressure + brownout + retry budget) against a no-defenses
  baseline on the *same* arrival schedule; the defended arm must win
  on goodput, strictly.

Every tier merges its rows into
``benchmarks/results/live_serving.json`` (with host metadata — these
numbers are wall-clock and machine-dependent) for CI artifact upload.
"""

import json

from conftest import host_metadata

from repro.serve import LoadgenConfig, run_cell

POLICIES = ("FIFO", "QUTS")
MULTIPLIERS = (0.5, 1.0, 2.0)
SCALING_DURATION_MS = 800.0
OVERLOAD_MULTIPLIER = 6.0
OVERLOAD_DURATION_MS = 2_500.0


def _merge(results_dir, section, payload) -> None:
    path = results_dir / "live_serving.json"
    report = json.loads(path.read_text()) if path.exists() else {}
    report["host"] = host_metadata()
    report[section] = payload
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[{section} saved to {path}]")


def test_correctness_tier(results_dir):
    config = LoadgenConfig(duration_ms=500.0, master_seed=7)
    report = run_cell("FIFO", defended=True, admission="brownout",
                      config=config)
    offered = report["offered_queries"]
    assert offered > 0
    # Conservation: exactly one terminal outcome per offered query.
    assert sum(report["outcomes"].values()) == offered
    assert report["outcomes"]["completed"] > 0
    assert report["response_time_ms"]["p50"] is not None
    _merge(results_dir, "correctness", report)


def test_micro_scaling_grid(results_dir):
    rows = []
    for policy in POLICIES:
        for multiplier in MULTIPLIERS:
            config = LoadgenConfig(duration_ms=SCALING_DURATION_MS,
                                   rate_multiplier=multiplier)
            report = run_cell(policy, defended=True,
                              admission="brownout", config=config)
            rows.append(report)
            rt = report["response_time_ms"]
            print(f"{policy} x{multiplier}: goodput="
                  f"{report['goodput']:.3f} p50={rt['p50']} "
                  f"p99={rt['p99']} p999={rt['p999']}")
    for row in rows:
        assert sum(row["outcomes"].values()) == row["offered_queries"]
        rt = row["response_time_ms"]
        assert rt["p50"] is not None
        assert rt["p50"] <= rt["p99"] <= rt["p999"]
        # Realized QoS/QoD are reported for every cell.
        assert 0.0 <= row["qos_percent"] <= 1.0
        assert 0.0 <= row["qod_percent"] <= 1.0
    # Light load must essentially all complete, for both policies.
    for row in rows:
        if row["rate_multiplier"] == 0.5:
            assert row["goodput"] > 0.9, row["policy"]
    _merge(results_dir, "micro_scaling", rows)


def test_overload_defended_beats_baseline(results_dir):
    config = LoadgenConfig(duration_ms=OVERLOAD_DURATION_MS,
                           rate_multiplier=OVERLOAD_MULTIPLIER)
    defended = run_cell("QUTS", defended=True, admission="brownout",
                        config=config)
    baseline = run_cell("QUTS", defended=False, config=config)
    print(f"overload x{OVERLOAD_MULTIPLIER}: defended goodput="
          f"{defended['goodput']:.3f} vs baseline="
          f"{baseline['goodput']:.3f}")
    # Same offered schedule on both arms.
    assert defended["offered_queries"] == baseline["offered_queries"]
    # The acceptance bar: the full stack strictly beats no-defenses.
    assert defended["goodput"] > baseline["goodput"]
    # The defenses actually engaged (not a vacuous win).
    assert defended["degraded"] > 0 or \
        defended["outcomes"]["timed_out"] > 0 or \
        defended["outcomes"]["shed"] > 0
    _merge(results_dir, "overload", {
        "multiplier": OVERLOAD_MULTIPLIER,
        "duration_ms": OVERLOAD_DURATION_MS,
        "defended": defended,
        "baseline": baseline,
        "goodput_gain": defended["goodput"] - baseline["goodput"],
    })
