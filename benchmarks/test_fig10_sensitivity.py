"""Figure 10 — sensitivity of QUTS to its two parameters.

Paper: (a) total profit varies very little across adaptation periods ω
from 0.1 s to 100 s; (b) the best atom time τ is around 10 ms — "close to
the maximum execution time of our queries (5 ms ~ 9 ms)" — with smaller
and much larger values doing worse.

Shape checks: flat-ish ω curve; τ peak in the 5-100 ms region, strictly
better than the 1000 ms extreme.
"""

from conftest import run_once, save_report

from repro.experiments.figures import fig10
from repro.experiments.report import format_table


def test_fig10_sensitivity(benchmark, config, trace, results_dir):
    data = run_once(benchmark, fig10, config, trace)

    # (a) omega: little sensitivity across three decades.
    omega_totals = [row["total%"] for row in data["omega"]]
    assert max(omega_totals) - min(omega_totals) < 0.15
    assert all(total > 0.6 for total in omega_totals)

    # (b) tau: the best value lies in the 5-100 ms band around the query
    # service times, and clearly beats the 1-second extreme.
    tau_rows = {row["tau_ms"]: row["total%"] for row in data["tau"]}
    best_tau = max(tau_rows, key=lambda tau: tau_rows[tau])
    assert 5.0 <= best_tau <= 100.0
    assert tau_rows[best_tau] > tau_rows[1000.0]
    # The paper's rule of thumb: tau at ~10 ms (max query service time)
    # performs within noise of the best.
    assert tau_rows[10.0] >= tau_rows[best_tau] - 0.02

    save_report(results_dir, "fig10_omega",
                format_table(data["omega"],
                             title="Figure 10a (reproduced) - sensitivity "
                                   "to omega"))
    save_report(results_dir, "fig10_tau",
                format_table(data["tau"],
                             title="Figure 10b (reproduced) - sensitivity "
                                   "to tau"))
