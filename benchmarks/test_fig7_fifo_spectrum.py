"""Figure 7 — FIFO across the Table 4 QC spectrum.

Paper: "FIFO gains the worst QoS profit percentage because it ignores the
time constraints that users specified.  Thus, although FIFO has a decent
QoD profit, it still cannot avoid to have the worst total profit
percentage."

Shape checks: FIFO's QoS% falls well short of the attainable QOSmax% at
every mix, while its QoD% stays a sizeable fraction of QODmax% ("decent").
"""

from conftest import run_once, save_report

from repro.experiments.figures import fig7
from repro.experiments.report import format_table


def test_fig7_fifo_spectrum(benchmark, config, trace, results_dir):
    rows = run_once(benchmark, fig7, config, trace)
    assert len(rows) == 9

    for row in rows:
        qos_max_percent = row["QOSmax%"]
        qod_max_percent = 1.0 - qos_max_percent
        # Deadline-blind: a large part of the QoS profit is forfeited.
        assert row["QOS%"] <= 0.8 * qos_max_percent + 1e-9, row
        # "Decent QoD profit": at least half of the attainable QoD.
        assert row["QOD%"] >= 0.5 * qod_max_percent, row
        assert row["total%"] <= 1.0

    # The spectrum is monotone in construction: QoD share of the maxima
    # rises left to right, so gained QoD profit percentage rises too.
    qod_gains = [row["QOD%"] for row in rows]
    assert qod_gains[-1] > qod_gains[0]

    save_report(results_dir, "fig7_fifo_spectrum",
                format_table(rows, title="Figure 7 (reproduced) - FIFO "
                                         "across the QC spectrum"))
