"""Ablation — QUTS's pluggable low level (§4's modularity claim).

The paper asserts the high level is the central component and "QUTS can
utilize any priority scheme" underneath.  We swap the query queue's policy
(VRD / FCFS / EDF / profit-rate) and the update queue's (FIFO vs the §3.1
inherited-QoD extension) and check that (a) everything runs, (b) the
value-aware VRD beats the value-blind FCFS on QoS profit, and (c) the
spread across low-level choices is second-order next to the high-level
policy gap (QUTS-any-low-level vs UH)."""

from conftest import run_once, save_report

from repro.experiments.ablations import ablation_low_level
from repro.experiments.report import format_table


def test_ablation_low_level_policies(benchmark, config, trace,
                                     results_dir):
    rows = run_once(benchmark, ablation_low_level, config, trace)
    by_name = {row["low_level"]: row for row in rows}

    vrd = by_name["queries: vrd"]
    fcfs = by_name["queries: fcfs"]
    uh = by_name["(UH baseline, for scale)"]

    # Value-aware beats value-blind on QoS profit.
    assert vrd["QOS%"] >= fcfs["QOS%"] - 1e-9

    # Low-level spread is second-order vs the high-level gap to UH.
    quts_rows = rows[:-1]
    spread = (max(r["total%"] for r in quts_rows)
              - min(r["total%"] for r in quts_rows))
    high_level_gap = vrd["total%"] - uh["total%"]
    assert spread < high_level_gap

    # The inherited-QoD update policy is a safe plug-in (no collapse).
    assert by_name["updates: inherited-QoD"]["total%"] \
        >= vrd["total%"] - 0.05

    save_report(results_dir, "ablation_low_level",
                format_table(rows, title="Ablation - QUTS low-level "
                                          "policies (balanced QCs)"))
