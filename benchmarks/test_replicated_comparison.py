"""Replicated policy comparison with confidence intervals.

Single-run comparisons can be luck; this bench replicates the QoD-heavy
spectrum point (where the paper's headline QUTS-vs-baseline gaps live)
over independent seeds and checks that the orderings hold in the mean,
with UH's deficit separated beyond overlapping 95% CIs.
"""

from conftest import run_once, save_report

from repro.experiments.replication import compare_policies
from repro.experiments.report import format_table
from repro.qc.generator import QCFactory

#: Replications are whole simulations; keep the horizon moderate.
DURATION_MS = 120_000.0
N_SEEDS = 4


def _replicated(config, trace):
    # trace is unused (each replication generates its own workload);
    # the fixture is accepted for interface uniformity.
    return compare_policies(
        ("UH", "QH", "QUTS"),
        lambda: QCFactory.spectrum_point(0.9),
        duration_ms=DURATION_MS, n_seeds=N_SEEDS,
        base_seed=200 + config.run_seed)


def test_replicated_qod_heavy_comparison(benchmark, config, trace,
                                         results_dir):
    comparison = run_once(benchmark, _replicated, config, trace)
    uh, qh, quts = (comparison["UH"], comparison["QH"],
                    comparison["QUTS"])

    # Mean ordering: QUTS at least matches both baselines.  (QH-vs-UH
    # ordering at this point is horizon-dependent: UH's meltdown needs
    # the full trace to develop, so it is not asserted here.)
    assert quts.mean >= qh.mean - 0.01
    assert quts.mean >= uh.mean - 0.01

    # QUTS's edge over the worst baseline is not seed luck: the CIs of
    # QUTS and the weakest policy must not overlap... unless everything
    # is within a hair of everything (calm-seed horizons).
    worst = min((uh, qh), key=lambda s: s.mean)
    if quts.mean - worst.mean > 0.03:
        assert not quts.overlaps(worst)

    rows = [dict(policy=name, **summary.row())
            for name, summary in comparison.items()]
    save_report(results_dir, "replicated_qod_heavy",
                format_table(rows, title=f"Replicated comparison, "
                                         f"QODmax%=0.9, n={N_SEEDS} "
                                         f"seeds x {DURATION_MS/1000:.0f}s"))
