"""Shared fixtures for the per-figure benchmark harness.

Scale is controlled by ``REPRO_SCALE`` (smoke / standard / full); the
``standard`` default replays a 5-minute slice of the paper's workload with
identical arrival rates, service times, and skew.  Each bench regenerates
one table or figure, asserts its qualitative *shape* against the paper,
and writes the reproduced rows to ``benchmarks/results/``.
"""

import os
import pathlib
import platform

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def host_metadata() -> dict:
    """Machine context stamped into every benchmark JSON artifact.

    Throughput and speedup numbers measured on a 2-core CI runner and a
    32-core workstation are not comparable; the artifact must say which
    one produced it.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session")
def trace(config):
    """One trace shared by every bench (generation is not re-measured)."""
    return config.trace()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a reproduced table and echo it for -s runs."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def run_once(benchmark, fn, *args, **kwargs):
    """Measure a single execution of an experiment driver.

    Simulation runs are deterministic and seconds-long, so one round is
    both sufficient and what keeps the full harness tractable.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
