"""Robustness checks for free parameters of the reproduction.

Two knobs the paper leaves loose are exercised here:

* the aging factor α — §4.1: "In general, α should be a small value, but
  the exact α does not matter much";
* the query lifetime — unpublished; DESIGN.md argues for 150 s.  The
  qualitative results must not hinge on that choice.
"""

from conftest import run_once, save_report

from repro.experiments.figures import FIG9_PHASE_MS, FIG9_RATIOS
from repro.experiments.report import format_table
from repro.experiments.runner import run_simulation
from repro.qc.generator import PhasedQCFactory, QCFactory
from repro.scheduling import QUTSScheduler, make_scheduler

ALPHAS = (0.05, 0.1, 0.3, 0.5, 0.9)
LIFETIMES_MS = (60_000.0, 150_000.0, 300_000.0)


def _alpha_sweep(config, trace):
    n_phases = max(1, round(trace.duration_ms / FIG9_PHASE_MS))
    ratios = [FIG9_RATIOS[i % len(FIG9_RATIOS)] for i in range(n_phases)]
    factory = PhasedQCFactory.flip_flop(FIG9_PHASE_MS, ratios)
    rows = []
    for alpha in ALPHAS:
        result = run_simulation(QUTSScheduler(alpha=alpha), trace,
                                factory, master_seed=config.run_seed)
        rows.append({"alpha": alpha, "total%": result.total_percent})
    return rows


def test_alpha_does_not_matter_much(benchmark, config, trace,
                                    results_dir):
    rows = run_once(benchmark, _alpha_sweep, config, trace)
    totals = [row["total%"] for row in rows]
    # The paper's claim, quantified: a full order of magnitude of alpha
    # moves total profit by only a few percent.
    assert max(totals) - min(totals) < 0.05
    save_report(results_dir, "robustness_alpha",
                format_table(rows, title="Robustness - QUTS aging factor "
                                          "alpha (Figure 9 workload)"))


def _lifetime_sweep(config, trace):
    rows = []
    for lifetime in LIFETIMES_MS:
        ordering = {}
        for policy in ("UH", "QH", "QUTS"):
            result = run_simulation(
                make_scheduler(policy), trace,
                QCFactory.balanced(lifetime=lifetime),
                master_seed=config.run_seed)
            ordering[policy] = result.total_percent
        rows.append({"lifetime_s": lifetime / 1000.0, **ordering})
    return rows


def test_lifetime_choice_does_not_flip_orderings(benchmark, config,
                                                 trace, results_dir):
    rows = run_once(benchmark, _lifetime_sweep, config, trace)
    for row in rows:
        # The headline qualitative facts hold at every lifetime: QUTS is
        # within noise of the best, and UH (query-starving) is worst.
        best = max(row["UH"], row["QH"], row["QUTS"])
        assert row["QUTS"] >= best - 0.02, row
        assert row["UH"] <= min(row["QH"], row["QUTS"]) + 1e-9, row
    save_report(results_dir, "robustness_lifetime",
                format_table(rows, title="Robustness - query lifetime "
                                          "choice (balanced QCs)"))
