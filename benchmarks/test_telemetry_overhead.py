"""Wall-clock benchmark of the telemetry instrumentation overhead.

Replays one fixed 20-second trace slice with telemetry disabled and
enabled, *interleaved* (off, on, off, on, ...) so drift in machine load
hits both arms equally, then asserts the two headline guarantees of the
observability layer:

- simulation results are byte-identical with telemetry on or off — the
  probes are pure observers; and
- the telemetry-off path costs (almost) nothing: every probe site is a
  single ``is None`` test, so the off arm must stay within a few percent
  of itself run-to-run and the on/off ratio must stay modest.

Medians and the overhead ratio are written to
``benchmarks/results/telemetry_overhead.json`` for CI artifact upload,
so the overhead trajectory across commits has data.
"""

import json
import pickle
import statistics
import time

from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler
from repro.telemetry import TelemetryConfig
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

TRACE_MS = 20_000.0
ROUNDS = 5
#: Loose CI-safe ceiling for full-tracing slowdown.  Local measurements
#: put the ratio near 2.4x with every category enabled; the bound only
#: guards against tracing becoming pathologically expensive (or the
#: disabled path growing real work, which shows up as both arms slowing
#: while the ratio collapses toward 1).
MAX_ON_OFF_RATIO = 5.0


def _fingerprint(result) -> bytes:
    rho = (None if result.rho_series is None
           else tuple(result.rho_series.items()))
    return pickle.dumps((result.scheduler_name, result.qos_percent,
                         result.qod_percent, result.total_percent,
                         result.mean_response_time, result.mean_staleness,
                         sorted(result.counters.items()), rho))


def _run(trace, telemetry):
    start = time.perf_counter()
    result = run_simulation(QUTSScheduler(), trace, QCFactory.balanced(),
                            master_seed=1, telemetry=telemetry)
    return time.perf_counter() - start, result


def test_telemetry_overhead(results_dir):
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(TRACE_MS),
                                   master_seed=3).generate()
    # Warm both paths (imports, allocator) outside the measurement.
    _run(trace, None)
    _run(trace, TelemetryConfig())

    off_s, on_s = [], []
    baseline = None
    for __ in range(ROUNDS):
        elapsed, result = _run(trace, None)
        off_s.append(elapsed)
        if baseline is None:
            baseline = _fingerprint(result)
        assert _fingerprint(result) == baseline

        elapsed, result = _run(trace, TelemetryConfig())
        on_s.append(elapsed)
        # The headline guarantee: observation never changes a single bit.
        assert _fingerprint(result) == baseline
        assert result.telemetry is not None
        assert len(result.telemetry.tracer) > 0

    off_median = statistics.median(off_s)
    on_median = statistics.median(on_s)
    ratio = on_median / off_median if off_median > 0 else 0.0
    assert 0.0 < ratio < MAX_ON_OFF_RATIO

    path = results_dir / "telemetry_overhead.json"
    path.write_text(json.dumps({
        "rounds": ROUNDS,
        "trace_ms": TRACE_MS,
        "off_median_s": off_median,
        "on_median_s": on_median,
        "on_off_ratio": ratio,
        "off_s": off_s,
        "on_s": on_s,
    }, indent=2, sort_keys=True) + "\n")
    print(f"\ntelemetry overhead: off={off_median:.3f}s "
          f"on={on_median:.3f}s ratio={ratio:.2f}x [saved to {path}]")
