"""Wall-clock benchmark of the telemetry instrumentation overhead.

Replays one fixed 20-second trace slice with telemetry disabled, fully
enabled, and enabled-with-sampling, *interleaved* (off, on, sampled,
off, on, sampled, ...) so drift in machine load hits every arm equally,
then asserts the headline guarantees of the observability layer:

- simulation results are byte-identical with telemetry off, on, or
  sampled — the probes are pure observers and stride sampling draws no
  randomness;
- the telemetry-off path costs (almost) nothing: every probe site is a
  single ``is None`` test, so the off arm must stay within a few percent
  of itself run-to-run and the on/off ratio must stay modest; and
- ``TelemetryConfig(sample_rate=...)`` actually buys its keep: the
  sampled arm must land meaningfully below the full-tracing arm.

Medians and the overhead ratios are written to
``benchmarks/results/telemetry_overhead.json`` for CI artifact upload,
so the overhead trajectory across commits has data.
"""

import json
import pickle
import statistics
import time

from conftest import host_metadata

from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler
from repro.telemetry import TelemetryConfig
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

TRACE_MS = 20_000.0
ROUNDS = 5
#: Loose CI-safe ceiling for full-tracing slowdown.  Local measurements
#: put the ratio near 2.4x with every category enabled; the bound only
#: guards against tracing becoming pathologically expensive (or the
#: disabled path growing real work, which shows up as both arms slowing
#: while the ratio collapses toward 1).
MAX_ON_OFF_RATIO = 5.0
#: Keep 1-in-10 records per category: the stride check runs before the
#: record object is built, so a sampled-out emit skips the allocation
#: that dominates full-tracing cost.
SAMPLE_RATE = 0.1
#: Local measurements put the sampled arm near 1.5x (the residual is
#: the exact metrics upkeep plus the probe call sites themselves); the
#: CI bound leaves headroom the same way MAX_ON_OFF_RATIO does.
MAX_SAMPLED_RATIO = 2.5


def _fingerprint(result) -> bytes:
    rho = (None if result.rho_series is None
           else tuple(result.rho_series.items()))
    return pickle.dumps((result.scheduler_name, result.qos_percent,
                         result.qod_percent, result.total_percent,
                         result.mean_response_time, result.mean_staleness,
                         sorted(result.counters.items()), rho))


def _run(trace, telemetry):
    start = time.perf_counter()
    result = run_simulation(QUTSScheduler(), trace, QCFactory.balanced(),
                            master_seed=1, telemetry=telemetry)
    return time.perf_counter() - start, result


def _sampled_config():
    from repro.telemetry.events import CATEGORIES
    return TelemetryConfig(sample_rate={cat: SAMPLE_RATE
                                        for cat in CATEGORIES})


def test_telemetry_overhead(results_dir):
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(TRACE_MS),
                                   master_seed=3).generate()
    # Warm every path (imports, allocator) outside the measurement.
    _run(trace, None)
    _run(trace, TelemetryConfig())
    _run(trace, _sampled_config())

    off_s, on_s, sampled_s = [], [], []
    baseline = None
    for __ in range(ROUNDS):
        elapsed, result = _run(trace, None)
        off_s.append(elapsed)
        if baseline is None:
            baseline = _fingerprint(result)
        assert _fingerprint(result) == baseline

        elapsed, result = _run(trace, TelemetryConfig())
        on_s.append(elapsed)
        # The headline guarantee: observation never changes a single bit.
        assert _fingerprint(result) == baseline
        assert result.telemetry is not None
        full_records = len(result.telemetry.tracer)
        assert full_records > 0

        elapsed, result = _run(trace, _sampled_config())
        sampled_s.append(elapsed)
        # Sampling is still pure observation — and still byte-identical.
        assert _fingerprint(result) == baseline
        assert result.telemetry is not None
        assert result.telemetry.tracer.sampled > 0
        assert 0 < len(result.telemetry.tracer) < full_records

    # Minimum over rounds estimates the noise floor — scheduler and
    # cache interference only ever add time, so the min is the most
    # repeatable per-arm estimate (medians jitter by ~±10% on a busy
    # machine, swamping the effect under test).
    off_best = min(off_s)
    on_best = min(on_s)
    sampled_best = min(sampled_s)
    ratio = on_best / off_best if off_best > 0 else 0.0
    sampled_ratio = sampled_best / off_best if off_best > 0 else 0.0
    assert 0.0 < ratio < MAX_ON_OFF_RATIO
    assert 0.0 < sampled_ratio < MAX_SAMPLED_RATIO
    # The point of the knob: sampling must undercut full tracing.
    assert sampled_best < on_best
    off_median = statistics.median(off_s)
    on_median = statistics.median(on_s)
    sampled_median = statistics.median(sampled_s)

    path = results_dir / "telemetry_overhead.json"
    path.write_text(json.dumps({
        "host": host_metadata(),
        "rounds": ROUNDS,
        "trace_ms": TRACE_MS,
        "sample_rate": SAMPLE_RATE,
        "off_best_s": off_best,
        "on_best_s": on_best,
        "sampled_best_s": sampled_best,
        "off_median_s": off_median,
        "on_median_s": on_median,
        "sampled_median_s": sampled_median,
        "on_off_ratio": ratio,
        "sampled_off_ratio": sampled_ratio,
        "off_s": off_s,
        "on_s": on_s,
        "sampled_s": sampled_s,
    }, indent=2, sort_keys=True) + "\n")
    print(f"\ntelemetry overhead: off={off_best:.3f}s "
          f"on={on_best:.3f}s sampled={sampled_best:.3f}s "
          f"ratio={ratio:.2f}x sampled_ratio={sampled_ratio:.2f}x "
          f"[saved to {path}]")
