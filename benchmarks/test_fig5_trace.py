"""Figure 5 — trace characteristics.

Paper: (a) query rate roughly stationary with small changes plus spikes;
(b) update rate with a downward trend; (c) per-stock scatter with most
points below the diagonal (more updates than queries).

Shape checks: each published characteristic, computed from the generated
trace itself.
"""

from conftest import run_once, save_report

from repro.experiments.figures import fig5
from repro.experiments.report import format_table


def test_fig5_trace_characteristics(benchmark, config, results_dir):
    data = run_once(benchmark, fig5, config)
    summary = data["summary"]

    # (a) stationary base rate: the paper's full-trace mean is ~45.6/s.
    assert 30.0 <= summary["query_rate_mean"] <= 65.0
    # ... with visible spikes above the base (flash crowds).
    assert summary["query_rate_max"] > 1.5 * summary["query_rate_mean"]

    # (b) downward update trend.
    assert (summary["update_rate_first_half"]
            > summary["update_rate_second_half"])

    # (c) most stocks get more updates than queries.
    assert summary["fraction_below_diagonal"] > 0.5

    save_report(results_dir, "fig5_trace",
                format_table([summary],
                             title="Figure 5 (reproduced) - trace "
                                   "characteristics"))
