"""Micro-benchmarks of the simulation substrate itself.

These are the only benches measuring wall-clock performance rather than
reproduced results: the event-loop rate of the DES kernel and the
end-to-end simulated-transaction rate of the full stack.  They guard
against performance regressions that would make the full-scale
experiments impractical (the 30-minute trace replays ~580k transactions).

The calendar-queue kernel is benchmarked A/B against
:class:`~repro.sim.environment.HeapEnvironment` — the previous commit's
binary-heap kernel, kept verbatim as the executable specification — on
two workloads, interleaved (heap, calendar, heap, calendar, ...) with
the minimum over rounds on each side so machine-load drift hits both
arms equally:

* the **deep deadline backlog** the calendar queue was built for
  (overload serving keeps hundreds of thousands of in-flight deadline
  timeouts pending): the heap pays O(log n) tuple comparisons per event
  while the calendar drains whole millisecond buckets, so the speedup
  here is the headline number; and
* the **shallow ticker storm** (queue depth ~1), which is the binary
  heap's best case — recorded honestly, the calendar gives a little
  back there, and real sweeps are nowhere near queue depth 1.

Both kernels must also produce *bit-identical* simulation ledgers on a
real policy run; that check gates the speedup claim.  Measured rates are
appended to ``benchmarks/results/kernel_throughput.json`` so the
performance trajectory across commits has data.
"""

import gc
import json
import pickle
import time

from conftest import host_metadata

import repro.experiments.runner as runner_mod
from repro.experiments.figures import _policy_run_task
from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler
from repro.sim import Environment
from repro.sim.environment import HeapEnvironment
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

N_TIMEOUT_EVENTS = 50_000
#: Deep-backlog A/B: one million pending deadline timeouts, quantized to
#: the workload's millisecond grid, ~100 per calendar bucket.
BACKLOG_EVENTS = 1_000_000
BACKLOG_HORIZON_MS = 10_000
AB_ROUNDS = 3
#: CI-safe floor for the deep-backlog speedup; the committed artifact
#: records the measured value (~3.2x on the 1-core bench VM).  Cache
#: geometry moves the exact ratio machine to machine, the asymptotics
#: do not.
MIN_DEEP_SPEEDUP = 2.0


def _record(results_dir, name: str, payload: dict) -> None:
    """Merge one measurement block into the kernel-throughput artifact."""
    path = results_dir / "kernel_throughput.json"
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged["host"] = host_metadata()
    merged[name] = payload
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


def _timed(fn, *args):
    """One measurement with the collector parked outside the clock."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn(*args)
        return time.perf_counter() - start, result
    finally:
        gc.enable()


# ----------------------------------------------------------------------
# Workloads (parameterised by kernel class so both arms run one code path)
# ----------------------------------------------------------------------
def _timeout_storm(env_cls):
    env = env_cls()
    fired = [0]

    def ticker(env):
        for __ in range(N_TIMEOUT_EVENTS):
            yield env.timeout(1.0)
            fired[0] += 1

    env.process(ticker(env))
    env.run()
    return fired[0]


def _deep_backlog(env_cls, delays):
    env = env_cls()
    timeout = env.timeout
    for delay in delays:
        timeout(delay)
    env.run()
    return env.now


def _ledger_fingerprint(env_cls) -> bytes:
    """A real QUTS run's full result ledger under the given kernel."""
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(20_000.0),
                                   master_seed=7).generate()
    original = runner_mod.Environment
    runner_mod.Environment = env_cls
    try:
        result = _policy_run_task("QUTS", trace, QCFactory.balanced(), 5)
    finally:
        runner_mod.Environment = original
    rho = (None if result.rho_series is None
           else tuple(result.rho_series.items()))
    return pickle.dumps((result.scheduler_name, result.qos_percent,
                         result.qod_percent, result.total_percent,
                         result.mean_response_time, result.mean_staleness,
                         sorted(result.counters.items()), rho))


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------
def test_kernel_event_rate(benchmark, results_dir):
    fired = benchmark(_timeout_storm, Environment)
    assert fired == N_TIMEOUT_EVENTS
    # Sanity floor: a pure-Python DES should clear well over 100k
    # timeout events per second on any modern machine.
    events_per_second = N_TIMEOUT_EVENTS / benchmark.stats["mean"]
    assert events_per_second > 100_000
    _record(results_dir, "kernel_event_rate", {
        "mean_s": benchmark.stats["mean"],
        "rate": events_per_second,
        "rate_unit": "events/s",
        "workload": f"shallow ticker storm ({N_TIMEOUT_EVENTS} x 1ms)",
    })


def test_kernel_ab_vs_previous(results_dir):
    """Interleaved calendar-vs-heap A/B on both workload regimes."""
    delays = [float((i * 7919) % BACKLOG_HORIZON_MS)
              for i in range(BACKLOG_EVENTS)]
    best: dict = {}
    for __ in range(AB_ROUNDS):
        for name, env_cls in (("heap", HeapEnvironment),
                              ("calendar", Environment)):
            deep_s, end = _timed(_deep_backlog, env_cls, delays)
            shallow_s, fired = _timed(_timeout_storm, env_cls)
            assert fired == N_TIMEOUT_EVENTS
            assert end == float(BACKLOG_HORIZON_MS - 1)
            best[name, "deep"] = min(best.get((name, "deep"), deep_s),
                                     deep_s)
            best[name, "shallow"] = min(
                best.get((name, "shallow"), shallow_s), shallow_s)

    # The speedup claim is only worth recording if both kernels agree
    # on a real simulation down to the last bit.
    bit_identical = (_ledger_fingerprint(HeapEnvironment)
                     == _ledger_fingerprint(Environment))
    assert bit_identical

    deep_speedup = best["heap", "deep"] / best["calendar", "deep"]
    shallow_ratio = best["heap", "shallow"] / best["calendar", "shallow"]
    _record(results_dir, "deep_backlog_ab", {
        "workload": (f"{BACKLOG_EVENTS} pending ms-quantized deadline "
                     f"timeouts over {BACKLOG_HORIZON_MS} ms"),
        "previous_kernel": "HeapEnvironment (binary heap, verbatim "
                           "pre-calendar kernel)",
        "previous_s": round(best["heap", "deep"], 3),
        "calendar_s": round(best["calendar", "deep"], 3),
        "previous_rate": round(BACKLOG_EVENTS / best["heap", "deep"]),
        "calendar_rate": round(BACKLOG_EVENTS / best["calendar", "deep"]),
        "rate_unit": "events/s",
        "speedup_vs_previous": round(deep_speedup, 2),
        "bit_identical": bit_identical,
        "rounds": AB_ROUNDS,
        "protocol": "interleaved, min over rounds, gc disabled",
    })
    _record(results_dir, "shallow_storm_ab", {
        "workload": f"shallow ticker storm ({N_TIMEOUT_EVENTS} x 1ms), "
                    "queue depth ~1",
        "speedup_vs_previous": round(shallow_ratio, 2),
        "bit_identical": bit_identical,
        "note": "the binary heap's best case: at depth 1 its O(log n) "
                "discipline is free while the calendar still pays "
                "bucket bookkeeping; real sweeps run far deeper",
    })
    print(f"\nkernel A/B vs heap: deep {deep_speedup:.2f}x, "
          f"shallow {shallow_ratio:.2f}x, bit_identical={bit_identical}")
    assert deep_speedup >= MIN_DEEP_SPEEDUP


def _end_to_end_slice():
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(10_000.0),
                                   master_seed=3).generate()
    result = run_simulation(QUTSScheduler(), trace, QCFactory.balanced(),
                            master_seed=1, drain_ms=5_000.0)
    return result, len(trace.queries) + len(trace.updates)


def test_end_to_end_transaction_rate(benchmark, results_dir):
    result, n_txns = benchmark.pedantic(_end_to_end_slice, rounds=3,
                                        iterations=1, warmup_rounds=1)
    assert result.counters["queries_submitted"] > 0
    txns_per_second = n_txns / benchmark.stats["mean"]
    # The full 30-minute trace (~580k txns) must stay replayable in
    # minutes: demand at least 10k simulated transactions per second.
    assert txns_per_second > 10_000
    _record(results_dir, "end_to_end_transaction_rate", {
        "mean_s": benchmark.stats["mean"],
        "rate": txns_per_second,
        "rate_unit": "txns/s",
    })
