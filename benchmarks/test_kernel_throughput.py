"""Micro-benchmarks of the simulation substrate itself.

These are the only benches measuring wall-clock performance rather than
reproduced results: the event-loop rate of the DES kernel and the
end-to-end simulated-transaction rate of the full stack.  They guard
against performance regressions that would make the full-scale
experiments impractical (the 30-minute trace replays ~580k transactions).
"""

from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler
from repro.sim import Environment
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

N_TIMEOUT_EVENTS = 50_000


def _timeout_storm():
    env = Environment()
    fired = [0]

    def ticker(env):
        for __ in range(N_TIMEOUT_EVENTS):
            yield env.timeout(1.0)
            fired[0] += 1

    env.process(ticker(env))
    env.run()
    return fired[0]


def test_kernel_event_rate(benchmark):
    fired = benchmark(_timeout_storm)
    assert fired == N_TIMEOUT_EVENTS
    # Sanity floor: a pure-Python DES should clear well over 100k
    # timeout events per second on any modern machine.
    events_per_second = N_TIMEOUT_EVENTS / benchmark.stats["mean"]
    assert events_per_second > 100_000


def _end_to_end_slice():
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(10_000.0),
                                   master_seed=3).generate()
    result = run_simulation(QUTSScheduler(), trace, QCFactory.balanced(),
                            master_seed=1, drain_ms=5_000.0)
    return result, len(trace.queries) + len(trace.updates)


def test_end_to_end_transaction_rate(benchmark):
    result, n_txns = benchmark.pedantic(_end_to_end_slice, rounds=3,
                                        iterations=1, warmup_rounds=1)
    assert result.counters["queries_submitted"] > 0
    txns_per_second = n_txns / benchmark.stats["mean"]
    # The full 30-minute trace (~580k txns) must stay replayable in
    # minutes: demand at least 10k simulated transactions per second.
    assert txns_per_second > 10_000
