"""Micro-benchmarks of the simulation substrate itself.

These are the only benches measuring wall-clock performance rather than
reproduced results: the event-loop rate of the DES kernel and the
end-to-end simulated-transaction rate of the full stack.  They guard
against performance regressions that would make the full-scale
experiments impractical (the 30-minute trace replays ~580k transactions).
Measured rates are appended to ``benchmarks/results/kernel_throughput.json``
so the performance trajectory across commits has data.
"""

import json

from conftest import host_metadata

from repro.experiments.runner import run_simulation
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler
from repro.sim import Environment
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

N_TIMEOUT_EVENTS = 50_000


def _record(results_dir, name: str, mean_s: float, rate: float,
            rate_unit: str) -> None:
    """Merge one measurement into the kernel-throughput JSON artifact."""
    path = results_dir / "kernel_throughput.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["host"] = host_metadata()
    payload[name] = {
        "mean_s": mean_s,
        "rate": rate,
        "rate_unit": rate_unit,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _timeout_storm():
    env = Environment()
    fired = [0]

    def ticker(env):
        for __ in range(N_TIMEOUT_EVENTS):
            yield env.timeout(1.0)
            fired[0] += 1

    env.process(ticker(env))
    env.run()
    return fired[0]


def test_kernel_event_rate(benchmark, results_dir):
    fired = benchmark(_timeout_storm)
    assert fired == N_TIMEOUT_EVENTS
    # Sanity floor: a pure-Python DES should clear well over 100k
    # timeout events per second on any modern machine.
    events_per_second = N_TIMEOUT_EVENTS / benchmark.stats["mean"]
    assert events_per_second > 100_000
    _record(results_dir, "kernel_event_rate", benchmark.stats["mean"],
            events_per_second, "events/s")


def _end_to_end_slice():
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(10_000.0),
                                   master_seed=3).generate()
    result = run_simulation(QUTSScheduler(), trace, QCFactory.balanced(),
                            master_seed=1, drain_ms=5_000.0)
    return result, len(trace.queries) + len(trace.updates)


def test_end_to_end_transaction_rate(benchmark, results_dir):
    result, n_txns = benchmark.pedantic(_end_to_end_slice, rounds=3,
                                        iterations=1, warmup_rounds=1)
    assert result.counters["queries_submitted"] > 0
    txns_per_second = n_txns / benchmark.stats["mean"]
    # The full 30-minute trace (~580k txns) must stay replayable in
    # minutes: demand at least 10k simulated transactions per second.
    assert txns_per_second > 10_000
    _record(results_dir, "end_to_end_transaction_rate",
            benchmark.stats["mean"], txns_per_second, "txns/s")
