"""Ablation — how load-bearing is the update register table?

The paper's system model drops a pending update the moment a newer one
arrives for the same item (§2.1).  With the workload near saturation,
that invalidation is the relief valve that keeps update-deferring
policies viable: without it every one of the ~497k updates must be
applied, the update stream's full demand lands on the CPU, and staleness
and/or query latency must give.

Shape checks: with invalidation off, (a) no update is ever superseded,
(b) QH's staleness grows several-fold (every queued duplicate counts and
must wait its turn), and (c) total profit drops.
"""

from conftest import run_once, save_report

from repro.experiments.ablations import ablation_invalidation
from repro.experiments.report import format_table


def test_ablation_invalidation(benchmark, config, trace, results_dir):
    rows = run_once(benchmark, ablation_invalidation, config, trace)
    with_valve = next(r for r in rows if r["register table"].startswith("on"))
    without_valve = next(r for r in rows if r["register table"] == "off")

    # (a) the toggle really disables supersession.
    assert without_valve["superseded"] == 0
    assert with_valve["superseded"] > 0

    # (b) staleness blows up without the valve.
    assert without_valve["uu"] > 3 * with_valve["uu"]

    # (c) profit suffers.
    assert without_valve["total%"] < with_valve["total%"]

    save_report(results_dir, "ablation_invalidation",
                format_table(rows, title="Ablation - update register "
                                          "table on/off (QH, balanced "
                                          "QCs)"))
