"""Recovery-time benchmark: checkpoint interval vs. RPO/RTO.

A 2-replica hedged deployment suffers a scripted portal-wide crash while
every replica carries a write-ahead log with periodic crash-consistent
checkpoints.  The sweep varies the checkpoint interval and records each
incident's RPO (unflushed WAL records lost, in #uu) and RTO (ms from
recovery to a drained re-sync backlog), per scheduling policy.  The
invariant monitor audits every run, so a passing benchmark is also a
machine-checked conservation proof for the chaos path.

Besides the human-readable table, the sweep is saved as
``benchmarks/results/recovery_rto.json`` for CI artifact upload.
"""

import json
import math

from conftest import host_metadata, run_once, save_report

from repro.experiments.recovery import (RECOVERY_DOWN_MS, recovery_sweep)
from repro.experiments.report import format_table


def _sweep(config, trace):
    return recovery_sweep(config, trace=trace)


def test_checkpoints_bound_recovery_cost(benchmark, config, trace,
                                         results_dir):
    rows = run_once(benchmark, _sweep, config, trace)
    by_point = {(row["policy"], row["checkpoint_s"]): row for row in rows}
    intervals = sorted({row["checkpoint_s"] for row in rows
                        if row["checkpoint_s"] != float("inf")})
    assert intervals, "the sweep must exercise at least one interval"

    for policy in ("FIFO", "QUTS"):
        baseline = by_point[(policy, float("inf"))]
        assert baseline["rpo_uu"] == 0
        assert baseline["rto_ms"] is None
        for interval_s in intervals:
            row = by_point[(policy, interval_s)]
            # Every incident recovered and caught up within the run.
            assert row["rto_ms"] is not None and row["rto_ms"] > 0, (
                policy, interval_s)
            # RPO is bounded by the group-commit window, not the
            # checkpoint interval: only the unflushed tail dies.
            assert row["rpo_uu"] < 8, (policy, interval_s)
            # Each run was audited end-to-end by the invariant monitor.
            assert row["invariants"], (policy, interval_s)
        # Checkpoints fence the WAL: longer intervals can only replay
        # more records at recovery, never fewer.
        replays = [by_point[(policy, s)]["wal_replayed"]
                   for s in intervals]
        assert replays == sorted(replays), (policy, replays)

    save_report(results_dir, "recovery_rto",
                format_table(rows, title="Durability - checkpoint "
                                         "interval vs. recovery cost "
                                         "(portal down "
                                         f"{RECOVERY_DOWN_MS / 1000:.0f}"
                                         " s, 2 hedged replicas)"))
    cleaned = [{k: ("inf" if isinstance(v, float) and math.isinf(v)
                    else v) for k, v in row.items()} for row in rows]
    payload = {"host": host_metadata(), "rows": cleaned}
    path = results_dir / "recovery_rto.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {path}]")
