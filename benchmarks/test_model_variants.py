"""Model variants the paper defines but does not evaluate.

§2.2 defines two QC composition modes and evaluates only
QoS-independent; §2.1 allows both ``#uu`` and ``td`` as the staleness
metric and evaluates only ``#uu``.  These benches run the other halves:

* **QoS-dependent composition** — QoD profit only counts when the QoS
  deadline was met.  Totals can only fall relative to QoS-independent
  composition (dominance, proved pointwise in the unit tests); the
  policies that miss deadlines (FIFO, UH) must lose the most, and QUTS
  must remain the best-or-tied policy.
* **td-based QoD** — staleness measured as time-differential (ms) with
  a 500 ms threshold.  The qualitative policy ordering must survive the
  metric swap (UH still perfect on QoD, QUTS still best-or-tied).
"""

from conftest import run_once, save_report

from repro.db.server import ServerConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_simulation
from repro.qc.contracts import CompositionMode
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler

POLICIES = ("FIFO", "UH", "QH", "QUTS")


def _composition_rows(config, trace):
    rows = []
    totals = {}
    for mode in (CompositionMode.QOS_INDEPENDENT,
                 CompositionMode.QOS_DEPENDENT):
        factory = QCFactory(qosmax_range=(10.0, 50.0),
                            qodmax_range=(10.0, 50.0),
                            mode=mode)
        for policy in POLICIES:
            result = run_simulation(make_scheduler(policy), trace,
                                    factory,
                                    master_seed=config.run_seed)
            totals[(mode, policy)] = result
            rows.append({"mode": mode.value, "policy": policy,
                         "QOS%": result.qos_percent,
                         "QOD%": result.qod_percent,
                         "total%": result.total_percent})
    return rows, totals


def test_qos_dependent_composition(benchmark, config, trace, results_dir):
    rows, totals = run_once(benchmark, _composition_rows, config, trace)
    independent = CompositionMode.QOS_INDEPENDENT
    dependent = CompositionMode.QOS_DEPENDENT

    for policy in POLICIES:
        # Dependent composition can only lose profit (same trace, same
        # contracts, stricter payout rule).
        assert (totals[(dependent, policy)].total_percent
                <= totals[(independent, policy)].total_percent + 1e-9), \
            policy

    # Deadline-missing policies bleed QoD under the dependent rule...
    fifo_loss = (totals[(independent, "FIFO")].qod_percent
                 - totals[(dependent, "FIFO")].qod_percent)
    qh_loss = (totals[(independent, "QH")].qod_percent
               - totals[(dependent, "QH")].qod_percent)
    assert fifo_loss > qh_loss
    # ... and QUTS stays the best-or-tied policy in both modes.
    for mode in (independent, dependent):
        best = max(totals[(mode, p)].total_percent for p in POLICIES)
        assert totals[(mode, "QUTS")].total_percent >= best - 0.02, mode

    save_report(results_dir, "variant_composition",
                format_table(rows, title="Model variant - QoS-dependent "
                                          "vs QoS-independent QCs"))


def _td_rows(config, trace):
    # td thresholds are in milliseconds; 500 ms of staleness is the
    # freshness budget (roughly the update queue delay QH accrues under
    # pressure, so the metric actually discriminates).
    factory = QCFactory(qosmax_range=(10.0, 50.0),
                        qodmax_range=(10.0, 50.0),
                        uumax=500.0)
    rows = []
    results = {}
    for policy in POLICIES:
        result = run_simulation(
            make_scheduler(policy), trace, factory,
            master_seed=config.run_seed,
            server_config=ServerConfig(qod_metric="td"))
        results[policy] = result
        rows.append({"policy": policy,
                     "QOS%": result.qos_percent,
                     "QOD%": result.qod_percent,
                     "total%": result.total_percent,
                     "td_ms": result.mean_staleness})
    return rows, results


def test_td_staleness_metric(benchmark, config, trace, results_dir):
    rows, results = run_once(benchmark, _td_rows, config, trace)

    # UH still delivers perfect freshness in time units.
    assert results["UH"].mean_staleness == 0.0
    assert results["UH"].qod_percent >= results["QH"].qod_percent - 0.02
    # QUTS stays best-or-tied with the metric swapped.
    best = max(r.total_percent for r in results.values())
    assert results["QUTS"].total_percent >= best - 0.02

    save_report(results_dir, "variant_td_metric",
                format_table(rows, title="Model variant - td-based QoD "
                                          "(500 ms freshness budget)"))
