"""Ablation — cross-class preemption semantics for updates.

DESIGN.md models UH/QH's preemption of a running update as 2PL-HP
abort-and-restart (default), with a "suspend" alternative that keeps the
preempted update's progress.  This bench quantifies the choice on QH,
the policy that preempts updates constantly: restart semantics redoes a
measurable share of update work and cannot help QoD; suspend does not.
QUTS is included to show it is insensitive (its slot switches are
cooperative either way).
"""

from conftest import run_once, save_report

from repro.experiments.ablations import ablation_preemption
from repro.experiments.report import format_table


def test_ablation_update_preemption(benchmark, config, trace,
                                    results_dir):
    rows = run_once(benchmark, ablation_preemption, config, trace)
    cell = {(r["policy"], r["preempted update"]): r for r in rows}

    qh_restart = cell[("QH", "restart")]
    qh_suspend = cell[("QH", "suspend")]
    quts_restart = cell[("QUTS", "restart")]
    quts_suspend = cell[("QUTS", "suspend")]

    # QH with restart semantics really does redo update work...
    assert qh_restart["update_restarts"] > 100
    # ... which cannot help its QoD.
    assert qh_restart["QOD%"] <= qh_suspend["QOD%"] + 0.005

    # QUTS never cross-preempts, so the semantics barely matter.
    assert abs(quts_restart["total%"] - quts_suspend["total%"]) < 0.01
    assert quts_restart["update_restarts"] \
        < qh_restart["update_restarts"] / 10

    save_report(results_dir, "ablation_preemption",
                format_table(rows, title="Ablation - update preemption "
                                          "semantics (balanced QCs)"))
