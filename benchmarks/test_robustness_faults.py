"""Robustness under injected replica faults: the MTTF sweep.

A 2-replica hedged deployment replays the standard workload while an
exponential MTTF/MTTR fault plan crashes and repairs replicas.  FIFO and
QUTS face the *same* sampled schedule per MTTF point, so the gap between
them is pure scheduling: when capacity shrinks, QUTS spends what remains
on the contracts that pay, and retains strictly more profit.
"""

from conftest import run_once, save_report

from repro.experiments.faults import FAULT_MTTR_MS, fault_sweep
from repro.experiments.report import format_table


def _sweep(config, trace):
    return fault_sweep(config, trace=trace)


def test_quts_retains_more_profit_than_fifo_under_faults(
        benchmark, config, trace, results_dir):
    rows = run_once(benchmark, _sweep, config, trace)
    by_point = {(row["policy"], row["mttf_s"]): row for row in rows}
    mttfs = sorted({row["mttf_s"] for row in rows
                    if row["mttf_s"] != float("inf")})
    assert mttfs, "the sweep must exercise at least one finite MTTF"

    for mttf_s in mttfs:
        fifo = by_point[("FIFO", mttf_s)]
        quts = by_point[("QUTS", mttf_s)]
        # Identical fault schedule -> identical outages for both.
        assert fifo["crashes"] == quts["crashes"], mttf_s
        # The headline claim: preference-aware scheduling degrades more
        # gracefully — strictly more profit out of the same broken fleet.
        assert quts["total%"] > fifo["total%"], mttf_s
        assert 0.0 < quts["availability"] <= 1.0

    # The harshest point must actually bite (crashes happened), and the
    # baselines must dominate their own faulted runs within noise.
    assert by_point[("QUTS", min(mttfs))]["crashes"] > 0
    for policy in ("FIFO", "QUTS"):
        baseline = by_point[(policy, float("inf"))]
        assert baseline["crashes"] == 0
        for mttf_s in mttfs:
            assert (by_point[(policy, mttf_s)]["total%"]
                    <= baseline["total%"] + 0.02), (policy, mttf_s)

    save_report(results_dir, "robustness_faults",
                format_table(rows, title="Robustness - profit retention "
                                         "under replica faults "
                                         f"(MTTR {FAULT_MTTR_MS / 1000:.0f}"
                                         " s, 2 hedged replicas)"))
