"""Gray-failure defense: breaker + brownout vs the health-bit baseline.

A 3-replica hedged deployment suffers a *gray* failure schedule — one
replica serves 6x slower (alive, wrong), another silently drops its
update broadcast for a window — under three arms:

- **fault-free**: the same run with no faults (the ceiling);
- **baseline**: faults on, but routing sees only the binary up/down
  health bit — the slow replica keeps absorbing hedged traffic and the
  stale replica keeps answering with outdated data;
- **defended**: faults on, with the failure detector + per-replica
  circuit breaker steering traffic away from suspected replicas and
  brownout admission degrading service under the resulting pressure.

The headline assertion is the acceptance criterion for the defense
layer: the defended arm retains strictly more profit than the
health-bit-only baseline on the identical fault schedule, and the
breaker demonstrably tripped (the win is attributable, not luck).
Results land in ``benchmarks/results/gray_failure.json``.
"""

import json

from conftest import host_metadata, run_once

from repro.cluster import HealthConfig, HedgedRouter, run_cluster_simulation
from repro.db.admission import BrownoutAdmission
from repro.faults import FaultPlan
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler

N_REPLICAS = 3
SLOW_FACTOR = 6.0
HEALTH = HealthConfig(trip_suspicion=0.8, clear_suspicion=0.4,
                      open_ms=2_000.0)


def _gray_plan(horizon_ms: float) -> FaultPlan:
    """One slow replica + one lossy broadcast window, mid-run."""
    return FaultPlan.slowdown(
        0, at_ms=horizon_ms * 0.1, duration_ms=horizon_ms * 0.6,
        factor=SLOW_FACTOR,
    ).merged(FaultPlan.update_loss(
        1, at_ms=horizon_ms * 0.3, duration_ms=horizon_ms * 0.4))


def _run(trace, *, fault_plan=None, health=None, admission_factory=None):
    return run_cluster_simulation(
        N_REPLICAS, lambda: make_scheduler("QUTS"), trace,
        QCFactory.balanced(), router=HedgedRouter(), master_seed=1,
        fault_plan=fault_plan, invariants=True, health=health,
        admission_factory=admission_factory)


def _arms(trace):
    plan = _gray_plan(trace.duration_ms)
    return {
        "fault_free": _run(trace),
        "baseline": _run(trace, fault_plan=plan),
        "defended": _run(trace, fault_plan=plan, health=HEALTH,
                         admission_factory=lambda: BrownoutAdmission(
                             high_watermark=4, low_watermark=1)),
    }


def test_breaker_and_brownout_recover_profit(benchmark, config, trace,
                                             results_dir):
    arms = run_once(benchmark, _arms, trace)
    free, base, defended = (arms["fault_free"], arms["baseline"],
                            arms["defended"])

    # The schedule bit: both arms saw the same gray faults.
    for result in (base, defended):
        assert result.fault_counters["replica_slowdowns"] == 1
        assert result.fault_counters["updates_dropped_window"] > 0
    # The defense bit: the breaker tripped on the slow replica and took
    # it out of the hedged rotation while it was suspect.
    assert defended.fault_counters.get("breaker_trips", 0) > 0
    assert defended.routed_counts[0] < base.routed_counts[0]

    # The headline: same faults, strictly more profit with the defense
    # layer on — and nobody beats the fault-free ceiling.
    assert defended.total_percent > base.total_percent
    assert free.total_percent >= defended.total_percent

    rows = {
        name: {
            "total_percent": result.total_percent,
            "qos_percent": result.qos_percent,
            "qod_percent": result.qod_percent,
            "mean_response_time_ms": result.mean_response_time,
            "routed_counts": list(result.routed_counts),
            "breaker_trips": result.fault_counters.get("breaker_trips", 0),
            "queries_browned_out":
                result.counters.get("queries_browned_out", 0),
        }
        for name, result in arms.items()
    }
    payload = {
        "host": host_metadata(),
        "scale": config.scale,
        "n_replicas": N_REPLICAS,
        "slow_factor": SLOW_FACTOR,
        "horizon_ms": trace.duration_ms,
        "policy": "QUTS",
        "arms": rows,
        "defended_vs_baseline_gain":
            defended.total_percent - base.total_percent,
    }
    path = results_dir / "gray_failure.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\ngray failure: fault-free={free.total_percent:.3f} "
          f"baseline={base.total_percent:.3f} "
          f"defended={defended.total_percent:.3f} "
          f"(gain {payload['defended_vs_baseline_gain']:+.3f}) "
          f"[saved to {path}]")
