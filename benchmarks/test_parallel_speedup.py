"""Wall-clock benchmark of the parallel sweep runner.

Times the Figure-8 sweep (UH / QH / QUTS across the Table 4 spectrum)
sequentially and with a four-worker request, interleaved (sequential,
parallel, sequential, parallel, ...) with the minimum over rounds on
each side, verifies the runs are bit-identical **every** round, and
records the measurement — including the machine's core count, which
bounds the achievable speedup — to
``benchmarks/results/parallel_speedup.json`` for CI artifact upload.

The persistent pool is warmed before the clock starts: that is how the
engine is used (the CLI forks it before building any trace), so fork
cost is genuinely not part of a sweep.  The speedup gate is enforced
*unconditionally*: ≥ 1.5x with two or more cores, and ≥ 1.0x even on a
single core — the pool must never lose to the sequential path again
(its chunked dispatch amortises pickling, and the gc-frozen workers
collect less than the parent), so the 0.78x regression class cannot
land silently.

The sweep replays a fixed 20-second trace slice regardless of
``REPRO_SCALE`` so the benchmark stays tractable at every scale; the
speedup is a property of the fan-out machinery, not of the trace length.
"""

import gc
import json
import os
import pickle
import time

from conftest import host_metadata

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import _spectrum_tasks
from repro.parallel import run_tasks, shutdown_pool, warm_pool
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

POLICIES = ("UH", "QH", "QUTS")
WORKERS = 4
SWEEP_TRACE_MS = 20_000.0
ROUNDS = 3
#: Required 4-worker speedup on a multi-core host.
MIN_SPEEDUP_MULTI_CORE = 1.5
#: Even core-starved, the pool must at least break even.
MIN_SPEEDUP_ALWAYS = 1.0


def _fingerprint(result) -> bytes:
    rho = (None if result.rho_series is None
           else tuple(result.rho_series.items()))
    return pickle.dumps((result.scheduler_name, result.qos_percent,
                         result.qod_percent, result.total_percent,
                         result.mean_response_time, result.mean_staleness,
                         sorted(result.counters.items()), rho))


def test_parallel_speedup_fig8(results_dir):
    config = ExperimentConfig()
    trace = StockWorkloadGenerator(
        WorkloadSpec().scaled(SWEEP_TRACE_MS),
        config.workload_seed).generate()
    tasks = [task for name in POLICIES
             for task in _spectrum_tasks(name, config, trace)]

    pool_processes = warm_pool(WORKERS)
    sequential_rounds: list[float] = []
    parallel_rounds: list[float] = []
    try:
        for __ in range(ROUNDS):
            gc.collect()
            start = time.perf_counter()
            sequential = run_tasks(tasks, 1)
            sequential_rounds.append(time.perf_counter() - start)

            gc.collect()
            start = time.perf_counter()
            pooled = run_tasks(tasks, WORKERS)
            parallel_rounds.append(time.perf_counter() - start)

            # The headline guarantee, re-checked every round: fan-out
            # never changes a single bit.
            for task, a, b in zip(tasks, sequential, pooled):
                assert _fingerprint(a) == _fingerprint(b), task.key
    finally:
        shutdown_pool()

    sequential_s = min(sequential_rounds)
    parallel_s = min(parallel_rounds)
    speedup = sequential_s / parallel_s if parallel_s > 0 else 0.0
    cores = os.cpu_count() or 1
    required = (MIN_SPEEDUP_MULTI_CORE if cores >= 2
                else MIN_SPEEDUP_ALWAYS)
    payload = {
        "sweep": "fig8 (UH/QH/QUTS x Table-4 spectrum)",
        "trace_ms": SWEEP_TRACE_MS,
        "n_tasks": len(tasks),
        "workers": WORKERS,
        "pool_processes": pool_processes,
        "cpu_cores": cores,
        "rounds": ROUNDS,
        "protocol": "interleaved, min over rounds, pool pre-warmed",
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "required_speedup": required,
        "bit_identical": True,
        "speedup_enforced": True,
        "host": host_metadata(),
    }
    path = results_dir / "parallel_speedup.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nparallel speedup: {speedup:.2f}x on {cores} core(s) "
          f"({sequential_s:.1f}s -> {parallel_s:.1f}s)\n[saved to {path}]")

    # Enforced on every host: the pool may never lose to sequential.
    assert speedup >= required, payload
