"""Wall-clock benchmark of the parallel sweep runner.

Times the Figure-8 sweep (UH / QH / QUTS across the Table 4 spectrum)
sequentially and with a four-worker pool, verifies the two runs are
bit-identical, and records the measurement — including the machine's
core count, which bounds the achievable speedup — to
``benchmarks/results/parallel_speedup.json`` for CI artifact upload.

The sweep replays a fixed 20-second trace slice regardless of
``REPRO_SCALE`` so the benchmark stays tractable at every scale; the
speedup is a property of the fan-out machinery, not of the trace length.
"""

import json
import os
import pickle
import time

from conftest import host_metadata

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import _spectrum_tasks
from repro.parallel import run_tasks
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

POLICIES = ("UH", "QH", "QUTS")
WORKERS = 4
SWEEP_TRACE_MS = 20_000.0
#: Required 4-worker speedup — only enforceable with enough cores.
MIN_SPEEDUP = 2.5


def _fingerprint(result) -> bytes:
    rho = (None if result.rho_series is None
           else tuple(result.rho_series.items()))
    return pickle.dumps((result.scheduler_name, result.qos_percent,
                         result.qod_percent, result.total_percent,
                         result.mean_response_time, result.mean_staleness,
                         sorted(result.counters.items()), rho))


def test_parallel_speedup_fig8(results_dir):
    config = ExperimentConfig()
    trace = StockWorkloadGenerator(
        WorkloadSpec().scaled(SWEEP_TRACE_MS),
        config.workload_seed).generate()
    tasks = [task for name in POLICIES
             for task in _spectrum_tasks(name, config, trace)]

    start = time.perf_counter()
    sequential = run_tasks(tasks, 1)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_tasks(tasks, WORKERS)
    parallel_s = time.perf_counter() - start

    # The headline guarantee: fan-out never changes a single bit.
    for task, a, b in zip(tasks, sequential, pooled):
        assert _fingerprint(a) == _fingerprint(b), task.key

    speedup = sequential_s / parallel_s if parallel_s > 0 else 0.0
    cores = os.cpu_count() or 1
    payload = {
        "sweep": "fig8 (UH/QH/QUTS x Table-4 spectrum)",
        "trace_ms": SWEEP_TRACE_MS,
        "n_tasks": len(tasks),
        "workers": WORKERS,
        "cpu_cores": cores,
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "speedup_enforced": cores >= WORKERS,
        "host": host_metadata(),
    }
    path = results_dir / "parallel_speedup.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nparallel speedup: {speedup:.2f}x on {cores} core(s) "
          f"({sequential_s:.1f}s -> {parallel_s:.1f}s)\n[saved to {path}]")

    if cores >= WORKERS:
        # With >= 4 cores the 27-task sweep must parallelise materially.
        assert speedup >= MIN_SPEEDUP, payload
    else:
        # Core-starved machine: the pool cannot beat the clock, but its
        # overhead must stay bounded (and bit-identity held above).
        assert speedup > 0.2, payload
