"""Wall-clock benchmark of the determinism sanitizer's overhead.

Replays one fixed 20-second trace slice with the sanitizer off, in
race mode (access tracking + same-timestamp conflict detection), and in
perturbation mode (eid permutation only), *interleaved* (off, race,
perturb, off, ...) so drift in machine load hits every arm equally,
then asserts the headline guarantees of simsan:

- the sanitizer-off run is byte-identical to the race-mode run — the
  tracking proxies are pure observers, so turning detection on never
  changes a single bit of the result;
- a perturbed run (permuted eid tie-breaks) is *also* byte-identical on
  this clean workload — the tie-break invariance that ``repro
  sanitize`` enforces in CI;
- race mode stays within a loose CI-safe overhead ceiling, and the
  perturbation arm (a plain run with a different counter object) stays
  near 1x — it is the mode the perturbation harness runs 1 + salts
  times, so it must cost essentially nothing.

Minima and the overhead ratios are written to
``benchmarks/results/sanitizer_overhead.json`` for CI artifact upload,
so the overhead trajectory across commits has data.
"""

import json
import statistics
import time

from conftest import host_metadata

from repro.experiments.runner import run_simulation
from repro.experiments.sanitize import result_fingerprint
from repro.qc.generator import QCFactory
from repro.scheduling import QUTSScheduler
from repro.sim.sanitizer import Sanitizer
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

TRACE_MS = 20_000.0
ROUNDS = 5
#: Loose CI-safe ceiling for race-mode slowdown.  Local measurements
#: put the ratio near 1.7x (per-event bookkeeping plus the tracked
#: database's per-key logging); the bound only guards against tracking
#: becoming pathologically expensive.
MAX_RACE_RATIO = 4.0
#: Perturbation mode swaps one counter object and nothing else; local
#: measurements sit within noise of 1x.
MAX_PERTURB_RATIO = 1.5


def _run(trace, sanitizer):
    start = time.perf_counter()
    result = run_simulation(QUTSScheduler(), trace, QCFactory.balanced(),
                            master_seed=1, sanitizer=sanitizer)
    return time.perf_counter() - start, result


def test_sanitizer_overhead(results_dir):
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(TRACE_MS),
                                   master_seed=3).generate()
    # Warm every path (imports, allocator) outside the measurement.
    _run(trace, None)
    _run(trace, Sanitizer(track_state=True))
    _run(trace, Sanitizer(track_state=False, salt=1))

    off_s, race_s, perturb_s = [], [], []
    baseline = None
    for __ in range(ROUNDS):
        elapsed, result = _run(trace, None)
        off_s.append(elapsed)
        if baseline is None:
            baseline = result_fingerprint(result)
        assert result_fingerprint(result) == baseline

        sanitizer = Sanitizer(track_state=True)
        elapsed, result = _run(trace, sanitizer)
        race_s.append(elapsed)
        # The headline guarantee: detection never changes a single bit.
        assert result_fingerprint(result) == baseline
        assert sanitizer.events_seen > 0
        # And the library itself is clean under its own detector.
        assert sanitizer.findings == []

        sanitizer = Sanitizer(track_state=False, salt=1)
        elapsed, result = _run(trace, sanitizer)
        perturb_s.append(elapsed)
        # Tie-break invariance: permuted eids, identical results.
        assert result_fingerprint(result) == baseline

    # Minimum over rounds estimates the noise floor — interference only
    # ever adds time, so the min is the most repeatable estimate.
    off_best = min(off_s)
    race_best = min(race_s)
    perturb_best = min(perturb_s)
    race_ratio = race_best / off_best if off_best > 0 else 0.0
    perturb_ratio = perturb_best / off_best if off_best > 0 else 0.0
    assert 0.0 < race_ratio < MAX_RACE_RATIO
    assert 0.0 < perturb_ratio < MAX_PERTURB_RATIO

    path = results_dir / "sanitizer_overhead.json"
    path.write_text(json.dumps({
        "host": host_metadata(),
        "rounds": ROUNDS,
        "trace_ms": TRACE_MS,
        "off_best_s": off_best,
        "race_best_s": race_best,
        "perturb_best_s": perturb_best,
        "off_median_s": statistics.median(off_s),
        "race_median_s": statistics.median(race_s),
        "perturb_median_s": statistics.median(perturb_s),
        "race_off_ratio": race_ratio,
        "perturb_off_ratio": perturb_ratio,
        "off_s": off_s,
        "race_s": race_s,
        "perturb_s": perturb_s,
    }, indent=2, sort_keys=True) + "\n")
    print(f"\nsanitizer overhead: off={off_best:.3f}s "
          f"race={race_best:.3f}s perturb={perturb_best:.3f}s "
          f"race_ratio={race_ratio:.2f}x "
          f"perturb_ratio={perturb_ratio:.2f}x [saved to {path}]")
